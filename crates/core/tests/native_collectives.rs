//! Native-engine tests for barriers, collectives, atomics, locks, and
//! point-to-point synchronization.

use tshmem::prelude::*;
use tshmem::runtime::launch;
use tshmem::types::ReduceOp;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 16)
        .with_temp_bytes(1 << 12)
}

fn cfg_algos(npes: usize, algos: Algorithms) -> RuntimeConfig {
    cfg(npes).with_algos(algos)
}

// --- barriers -----------------------------------------------------------

fn barrier_phase_check(cfg: &RuntimeConfig) {
    let npes = cfg.npes;
    let out = launch(cfg, |ctx| {
        let counter = ctx.shmalloc::<u64>(1);
        ctx.local_write(&counter, 0, &[0u64]);
        ctx.barrier_all();
        let mut seen = Vec::new();
        for _round in 1..=5u64 {
            // Everyone bumps PE 0's counter, then barriers; after the
            // barrier all PEs must see exactly round * npes.
            ctx.add(&counter, 0, 1u64, 0);
            ctx.barrier_all();
            seen.push(ctx.g(&counter, 0, 0));
            ctx.barrier_all();
        }
        seen
    });
    for per_pe in out {
        assert_eq!(
            per_pe,
            (1..=5u64).map(|r| r * npes as u64).collect::<Vec<_>>()
        );
    }
}

#[test]
fn ring_barrier_synchronizes() {
    barrier_phase_check(&cfg(6));
}

#[test]
fn root_broadcast_barrier_synchronizes() {
    barrier_phase_check(&cfg_algos(
        6,
        Algorithms {
            barrier: BarrierAlgo::RootBroadcast,
            ..Default::default()
        },
    ));
}

#[test]
fn tmc_spin_barrier_synchronizes() {
    barrier_phase_check(&cfg_algos(
        6,
        Algorithms {
            barrier: BarrierAlgo::TmcSpin,
            ..Default::default()
        },
    ));
}

#[test]
fn dissemination_barrier_synchronizes() {
    barrier_phase_check(&cfg_algos(
        7, // deliberately not a power of two
        Algorithms {
            barrier: BarrierAlgo::Dissemination,
            ..Default::default()
        },
    ));
}

#[test]
fn dissemination_barrier_on_strided_subset() {
    launch(&cfg_algos(
        8,
        Algorithms {
            barrier: BarrierAlgo::Dissemination,
            ..Default::default()
        },
    ), |ctx| {
        let me = ctx.my_pe();
        let odds = ActiveSet::new(1, 1, 4); // PEs 1,3,5,7
        for _ in 0..10 {
            if odds.contains(me) {
                ctx.barrier(odds);
            }
        }
        ctx.barrier_all();
    });
}

#[test]
fn subset_barrier_with_stride() {
    launch(&cfg(8), |ctx| {
        let me = ctx.my_pe();
        let evens = ActiveSet::new(0, 1, 4); // PEs 0,2,4,6
        let flag = ctx.shmalloc::<u64>(1);
        ctx.local_write(&flag, 0, &[0u64]);
        ctx.barrier_all();
        if evens.contains(me) {
            ctx.p(&flag, 0, 1u64, me);
            ctx.barrier(evens);
            // All even PEs have set their flags.
            for pe in evens.iter() {
                assert_eq!(ctx.g(&flag, 0, pe), 1, "pe {pe} flag");
            }
        }
        ctx.barrier_all();
    });
}

#[test]
fn overlapping_barrier_sets_do_not_cross() {
    launch(&cfg(8), |ctx| {
        let me = ctx.my_pe();
        let evens = ActiveSet::new(0, 1, 4);
        let odds = ActiveSet::new(1, 1, 4);
        for _ in 0..20 {
            if evens.contains(me) {
                ctx.barrier(evens);
            } else {
                ctx.barrier(odds);
            }
        }
        ctx.barrier_all();
    });
}

// --- broadcast ----------------------------------------------------------

fn broadcast_check(algos: Algorithms) {
    launch(&cfg_algos(6, algos), |ctx| {
        let me = ctx.my_pe();
        let n = 512;
        let src = ctx.shmalloc::<u32>(n);
        let dst = ctx.shmalloc::<u32>(n);
        for root_rank in [0usize, 3] {
            let pat: Vec<u32> = (0..n as u32).map(|i| i * 7 + root_rank as u32).collect();
            if me == root_rank {
                ctx.local_write(&src, 0, &pat);
            }
            ctx.local_fill(&dst, 0);
            ctx.broadcast(&dst, &src, n, root_rank, ctx.world());
            if me != root_rank {
                assert_eq!(ctx.local_read(&dst, 0, n), pat, "root {root_rank}");
            } else {
                // Spec: the root's dest is untouched.
                assert_eq!(ctx.local_read(&dst, 0, n), vec![0; n]);
            }
        }
    });
}

#[test]
fn broadcast_pull_correct() {
    broadcast_check(Algorithms::default());
}

#[test]
fn broadcast_push_correct() {
    broadcast_check(Algorithms {
        broadcast: BroadcastAlgo::Push,
        ..Default::default()
    });
}

#[test]
fn broadcast_binomial_correct() {
    broadcast_check(Algorithms {
        broadcast: BroadcastAlgo::Binomial,
        ..Default::default()
    });
}

#[test]
fn broadcast_on_subset() {
    launch(&cfg(8), |ctx| {
        let me = ctx.my_pe();
        let set = ActiveSet::new(1, 1, 3); // PEs 1,3,5
        let src = ctx.shmalloc::<u64>(8);
        let dst = ctx.shmalloc::<u64>(8);
        ctx.local_fill(&dst, 0);
        if me == 3 {
            ctx.local_write(&src, 0, &[10, 20, 30, 40, 50, 60, 70, 80]);
        }
        ctx.barrier_all();
        if set.contains(me) {
            ctx.broadcast(&dst, &src, 8, 1, set); // root rank 1 = PE 3
            if me != 3 {
                assert_eq!(ctx.local_read(&dst, 0, 8)[3], 40);
            }
        }
        ctx.barrier_all();
        if !set.contains(me) {
            assert_eq!(ctx.local_read(&dst, 0, 8), vec![0; 8], "bystander untouched");
        }
    });
}

// --- collect ------------------------------------------------------------

#[test]
fn fcollect_concatenates_in_rank_order() {
    launch(&cfg(5), |ctx| {
        let me = ctx.my_pe();
        let n = 16;
        let src = ctx.shmalloc::<u32>(n);
        let dst = ctx.shmalloc::<u32>(n * ctx.n_pes());
        let pat: Vec<u32> = (0..n as u32).map(|i| me as u32 * 1000 + i).collect();
        ctx.local_write(&src, 0, &pat);
        ctx.fcollect(&dst, &src, n, ctx.world());
        let all = ctx.local_read(&dst, 0, n * ctx.n_pes());
        for pe in 0..ctx.n_pes() {
            for i in 0..n {
                assert_eq!(all[pe * n + i], pe as u32 * 1000 + i as u32);
            }
        }
    });
}

#[test]
fn collect_variable_sizes() {
    launch(&cfg(4), |ctx| {
        let me = ctx.my_pe();
        // PE i contributes i+1 elements.
        let mine = me + 1;
        let src = ctx.shmalloc::<u64>(8);
        let dst = ctx.shmalloc::<u64>(64);
        let pat: Vec<u64> = (0..mine as u64).map(|i| (me as u64 + 1) * 100 + i).collect();
        ctx.local_write(&src, 0, &pat);
        let total = ctx.collect(&dst, &src, mine, ctx.world());
        assert_eq!(total, 1 + 2 + 3 + 4);
        let all = ctx.local_read(&dst, 0, total);
        assert_eq!(all[0], 100); // PE0's single element
        assert_eq!(&all[1..3], &[200, 201]); // PE1
        assert_eq!(&all[3..6], &[300, 301, 302]); // PE2
        assert_eq!(&all[6..10], &[400, 401, 402, 403]); // PE3
    });
}

// --- reductions ---------------------------------------------------------

fn reduce_check(algos: Algorithms, npes: usize) {
    launch(&cfg_algos(npes, algos), |ctx| {
        let me = ctx.my_pe() as i64;
        let n = 64;
        let src = ctx.shmalloc::<i64>(n);
        let dst = ctx.shmalloc::<i64>(n);
        let pat: Vec<i64> = (0..n as i64).map(|i| me + i).collect();
        ctx.local_write(&src, 0, &pat);
        ctx.sum_to_all(&dst, &src, n, ctx.world());
        let npes = ctx.n_pes() as i64;
        let base: i64 = (0..npes).sum();
        let got = ctx.local_read(&dst, 0, n);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, base + npes * i as i64, "elem {i}");
        }
        // min / max
        ctx.min_to_all(&dst, &src, n, ctx.world());
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], 0);
        ctx.max_to_all(&dst, &src, n, ctx.world());
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], npes - 1);
    });
}

#[test]
fn reduce_naive_sum_min_max() {
    reduce_check(Algorithms::default(), 5);
}

#[test]
fn reduce_recursive_doubling_power_of_two() {
    reduce_check(
        Algorithms {
            reduce: ReduceAlgo::RecursiveDoubling,
            ..Default::default()
        },
        8,
    );
}

#[test]
fn reduce_recursive_doubling_non_power_of_two() {
    reduce_check(
        Algorithms {
            reduce: ReduceAlgo::RecursiveDoubling,
            ..Default::default()
        },
        6,
    );
}

#[test]
fn reduce_bitwise_ops() {
    launch(&cfg(4), |ctx| {
        let me = ctx.my_pe();
        let src = ctx.shmalloc::<u32>(1);
        let dst = ctx.shmalloc::<u32>(1);
        ctx.local_write(&src, 0, &[1u32 << me]);
        ctx.or_to_all(&dst, &src, 1, ctx.world());
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], 0b1111);
        ctx.xor_to_all(&dst, &src, 1, ctx.world());
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], 0b1111);
        ctx.and_to_all(&dst, &src, 1, ctx.world());
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], 0);
    });
}

#[test]
fn reduce_float_and_complex() {
    launch(&cfg(3), |ctx| {
        let me = ctx.my_pe();
        let fsrc = ctx.shmalloc::<f64>(4);
        let fdst = ctx.shmalloc::<f64>(4);
        ctx.local_write(&fsrc, 0, &[me as f64 + 1.0; 4]);
        ctx.prod_to_all(&fdst, &fsrc, 4, ctx.world());
        assert_eq!(ctx.local_read(&fdst, 0, 1)[0], 6.0); // 1*2*3

        let csrc = ctx.shmalloc::<Complex64>(2);
        let cdst = ctx.shmalloc::<Complex64>(2);
        ctx.local_write(&csrc, 0, &[Complex64::new(1.0, me as f64); 2]);
        ctx.reduce(ReduceOp::Sum, &cdst, &csrc, 2, ctx.world());
        assert_eq!(ctx.local_read(&cdst, 0, 1)[0], Complex64::new(3.0, 3.0));
    });
}

#[test]
fn reduce_on_subset_leaves_bystanders_alone() {
    launch(&cfg(6), |ctx| {
        let me = ctx.my_pe();
        let set = ActiveSet::new(0, 1, 3); // PEs 0,2,4
        let src = ctx.shmalloc::<i32>(1);
        let dst = ctx.shmalloc::<i32>(1);
        ctx.local_write(&src, 0, &[10 + me as i32]);
        ctx.local_write(&dst, 0, &[-1]);
        ctx.barrier_all();
        if set.contains(me) {
            ctx.sum_to_all(&dst, &src, 1, set);
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], 10 + 12 + 14);
        }
        ctx.barrier_all();
        if !set.contains(me) {
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], -1);
        }
    });
}

// --- atomics, locks, wait ------------------------------------------------

#[test]
fn atomic_fadd_counts_exactly() {
    let npes = 8;
    launch(&cfg(npes), |ctx| {
        let counter = ctx.shmalloc::<u64>(1);
        ctx.local_write(&counter, 0, &[0u64]);
        ctx.barrier_all();
        let mut olds = Vec::new();
        for _ in 0..100 {
            olds.push(ctx.fadd(&counter, 0, 1u64, 0));
        }
        ctx.barrier_all();
        assert_eq!(ctx.g(&counter, 0, 0), (npes * 100) as u64);
        // Fetched values are unique per increment.
        olds.dedup();
        assert_eq!(olds.len(), 100);
    });
}

#[test]
fn atomic_swap_and_cswap() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<i64>(2);
        ctx.local_write(&v, 0, &[7, 0]);
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            assert_eq!(ctx.swap(&v, 0, 99i64, 0), 7);
            assert_eq!(ctx.cswap(&v, 0, 99i64, 11, 0), 99); // succeeds
            assert_eq!(ctx.cswap(&v, 0, 99i64, 22, 0), 11); // fails, returns current
        }
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            assert_eq!(ctx.local_read(&v, 0, 1)[0], 11);
        }
        // Float swap.
        let f = ctx.shmalloc::<f32>(1);
        ctx.local_write(&f, 0, &[1.5f32]);
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            assert_eq!(ctx.swap_f32(&f, 0, 2.5, 0), 1.5);
        }
        ctx.barrier_all();
    });
}

#[test]
fn lock_provides_mutual_exclusion() {
    let npes = 6;
    let out = launch(&cfg(npes), |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        let shared = ctx.shmalloc::<u64>(2); // non-atomic counter + scratch
        ctx.local_write(&lock, 0, &[0i64]);
        ctx.local_write(&shared, 0, &[0u64, 0]);
        ctx.barrier_all();
        for _ in 0..50 {
            ctx.set_lock(&lock);
            // Deliberately racy read-modify-write, protected by the lock.
            let v = ctx.g(&shared, 0, 0);
            ctx.p(&shared, 0, v + 1, 0);
            ctx.quiet();
            ctx.clear_lock(&lock);
        }
        ctx.barrier_all();
        ctx.g(&shared, 0, 0)
    });
    assert!(out.iter().all(|v| *v == (6 * 50) as u64));
}

#[test]
fn test_lock_nonblocking() {
    launch(&cfg(2), |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        ctx.local_write(&lock, 0, &[0i64]);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            assert!(ctx.test_lock(&lock));
            ctx.barrier_all(); // PE 1 tries while held
            ctx.barrier_all();
            ctx.clear_lock(&lock);
        } else {
            ctx.barrier_all();
            assert!(!ctx.test_lock(&lock), "lock is held by PE 0");
            ctx.barrier_all();
        }
        ctx.barrier_all();
    });
}

#[test]
fn wait_until_unblocks_on_remote_put() {
    launch(&cfg(2), |ctx| {
        let flag = ctx.shmalloc::<i64>(1);
        let data = ctx.shmalloc::<u64>(128);
        ctx.local_write(&flag, 0, &[0i64]);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            let payload = vec![0xABu64; 128];
            ctx.put(&data, 0, &payload, 1);
            ctx.quiet();
            ctx.p(&flag, 0, 1i64, 1);
        } else {
            ctx.wait_until(&flag, 0, Cmp::Eq, 1i64);
            // Quiet + flag ordering: the data must be visible.
            assert_eq!(ctx.local_read(&data, 0, 128), vec![0xABu64; 128]);
            ctx.wait(&flag, 0, 0i64); // already != 0: returns immediately
        }
        ctx.barrier_all();
    });
}

#[test]
fn c_style_api_shim() {
    use tshmem::api;
    launch(&cfg(3), |ctx| {
        assert_eq!(api::my_pe(ctx), ctx.my_pe());
        assert_eq!(api::num_pes(ctx), 3);
        let v = api::shmalloc::<i32>(ctx, 8);
        api::shmem_p(ctx, &v, 5, (ctx.my_pe() + 1) % 3);
        api::shmem_barrier_all(ctx);
        assert_eq!(api::shmem_g(ctx, &v, ctx.my_pe()), 5);
        let dst = api::shmalloc::<i32>(ctx, 8);
        api::shmem_sum_to_all(ctx, &dst, &v, 1, 0, 0, 3);
        assert_eq!(ctx.local_read(&dst, 0, 1)[0], 15);
        api::shmem_barrier(ctx, 0, 0, 3);
        api::shfree(ctx, dst);
        api::shmem_finalize(ctx);
    });
}
