//! `Fault::PanicPe` canary through the server: the injected
//! crashing-tenant panic is caught at the PE boundary, reported as
//! `JobOutcome::Faulted`, consumes its one-shot budget, and leaves the
//! pool serving.
//!
//! Own test binary: the fault plane is process-global (`tshmem::fault`
//! module rule), so an installed PanicPe plan must not be able to hit
//! unrelated tests.

use std::time::Duration;

use tshmem::{Fault, FaultPlan, JobOutcome, JobSpec, RuntimeConfig, Server, ServerConfig};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(256 * 1024)
        .with_private_bytes(64 * 1024)
        .with_temp_bytes(16 * 1024)
}

fn busy_spec() -> JobSpec {
    JobSpec::new(cfg(2), |ctx| {
        let n = ctx.n_pes();
        let me = ctx.my_pe();
        let data = ctx.shmalloc::<u64>(8);
        ctx.local_fill(&data, 0u64);
        ctx.barrier_all();
        // Enough fabric ops that the global op counter comfortably
        // passes the plan's after_ops threshold.
        for round in 0..16u64 {
            ctx.p(&data, (round % 8) as usize, round, (me + 1) % n);
            ctx.barrier_all();
        }
    })
}

#[test]
fn injected_pe_panic_faults_the_job_once_and_pool_survives() {
    let server = Server::round_robin(ServerConfig {
        workers: 2,
        stall: Duration::from_secs(10),
        ..Default::default()
    });
    tshmem::fault::install(FaultPlan {
        seed: 0,
        faults: vec![Fault::PanicPe { pe: 1, after_ops: 8 }],
    });

    // First job trips the one-shot PanicPe and faults — diagnosed, not
    // a pool stall.
    let report = server.submit(busy_spec()).expect("admitted").wait();
    match &report.outcome {
        JobOutcome::Faulted { error, attempts } => {
            assert_eq!(*attempts, 1, "a caught panic is terminal, never retried");
            assert!(
                error.contains("PanicPe") || error.contains("aborting"),
                "fault message should name the injected panic or the \
                 secondary abort: {error}"
            );
        }
        other => panic!("PanicPe job must fault, got {other:?}"),
    }

    // The budget is one-shot: with the plan still installed, the same
    // workload now completes — and the pool kept serving through it.
    for _ in 0..3 {
        let report = server.submit(busy_spec()).expect("admitted").wait();
        assert!(
            report.outcome.is_completed(),
            "one-shot budget respected and pool healthy: {:?}",
            report.outcome
        );
    }
    tshmem::fault::clear();

    let stats = server.shutdown();
    assert_eq!((stats.faulted, stats.completed), (1, 3));
    assert_eq!(stats.evicted, 0, "a caught panic must not look like a wedge");
}
