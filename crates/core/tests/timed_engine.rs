//! Timed-engine tests: the same protocols under virtual time —
//! correctness, determinism, and latency sanity against the paper's
//! measured scales.

use tshmem::prelude::*;
use tshmem::runtime::launch_timed;
use tile_arch::device::Device;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 16)
        .with_temp_bytes(1 << 12)
}

#[test]
fn timed_ring_put_is_correct_and_timed() {
    let out = launch_timed(&cfg(4), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u64>(64);
        let next = (me + 1) % ctx.n_pes();
        let pat = vec![me as u64; 64];
        ctx.put(&buf, 0, &pat, next);
        ctx.barrier_all();
        let prev = (me + ctx.n_pes() - 1) % ctx.n_pes();
        assert_eq!(ctx.local_read(&buf, 0, 64), vec![prev as u64; 64]);
        ctx.time_ns()
    });
    // Virtual clocks advanced and are positive.
    assert!(out.makespan.ns_f64() > 0.0);
    for v in &out.values {
        assert!(*v > 0.0);
    }
}

#[test]
fn timed_runs_are_deterministic() {
    let run = || {
        let out = launch_timed(&cfg(6), |ctx| {
            let v = ctx.shmalloc::<i64>(32);
            let d = ctx.shmalloc::<i64>(32);
            ctx.local_write(&v, 0, &vec![ctx.my_pe() as i64; 32]);
            ctx.sum_to_all(&d, &v, 32, ctx.world());
            ctx.barrier_all();
            ctx.local_read(&d, 0, 1)[0]
        });
        (
            out.values.clone(),
            out.clocks.iter().map(|c| c.ps()).collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "virtual clocks must be bit-identical across runs");
    assert_eq!(a.0[0], 15); // 0+1+..+5
}

#[test]
fn timed_barrier_latency_in_paper_scale() {
    // TSHMEM ring barrier at 36 tiles: the paper reports ~3 us on the
    // TILEPro64 and better-than-Pro on the Gx36. Sanity: microseconds,
    // not nanoseconds or milliseconds.
    for (device, lo_us, hi_us) in [
        (Device::tile_gx8036(), 0.5, 10.0),
        (Device::tilepro64(), 0.5, 12.0),
    ] {
        let cfg = RuntimeConfig::for_device(device, 36)
            .with_partition_bytes(1 << 20)
            .with_private_bytes(1 << 14)
            .with_temp_bytes(1 << 12);
        let out = launch_timed(&cfg, |ctx| {
            ctx.barrier_all(); // warm
            let t0 = ctx.time_ns();
            for _ in 0..8 {
                ctx.barrier_all();
            }
            (ctx.time_ns() - t0) / 8.0
        });
        let us = out.values[0] / 1000.0;
        assert!(
            (lo_us..hi_us).contains(&us),
            "{}: barrier {us} us outside [{lo_us}, {hi_us}]",
            device.name
        );
    }
}

#[test]
fn timed_gx_barrier_faster_than_pro() {
    let barrier_us = |device: Device| {
        let cfg = RuntimeConfig::for_device(device, 16)
            .with_partition_bytes(1 << 20)
            .with_private_bytes(1 << 14)
            .with_temp_bytes(1 << 12);
        let out = launch_timed(&cfg, |ctx| {
            ctx.barrier_all();
            let t0 = ctx.time_ns();
            for _ in 0..4 {
                ctx.barrier_all();
            }
            (ctx.time_ns() - t0) / 4.0
        });
        out.values[0]
    };
    let gx = barrier_us(Device::tile_gx8036());
    let pro = barrier_us(Device::tilepro64());
    assert!(gx < pro, "paper: Gx TSHMEM barrier outperforms Pro ({gx} !< {pro})");
}

#[test]
fn timed_redirected_put_slower_than_direct() {
    let out = launch_timed(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let n = 2048usize;
        let dynv = ctx.shmalloc::<u64>(n);
        let statv = ctx.static_sym::<u64>(n);
        let src = ctx.shmalloc::<u64>(n);
        ctx.barrier_all();
        let mut dd = 0.0;
        let mut sd = 0.0;
        if me == 0 {
            // Warm both paths so cache state is comparable.
            ctx.put_sym(&dynv, 0, &src, 0, n, 1);
            ctx.put_sym(&statv, 0, &src, 0, n, 1);
            let t0 = ctx.time_ns();
            ctx.put_sym(&dynv, 0, &src, 0, n, 1);
            dd = ctx.time_ns() - t0;
            let t1 = ctx.time_ns();
            ctx.put_sym(&statv, 0, &src, 0, n, 1); // redirected
            sd = ctx.time_ns() - t1;
        }
        ctx.barrier_all();
        (dd, sd)
    });
    let (dd, sd) = out.values[0];
    assert!(sd > dd, "redirected static put must cost more: {sd} !> {dd}");
}

#[test]
fn timed_static_static_slowest() {
    let out = launch_timed(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let n = 512usize; // fits the 4 kB temp
        let s1 = ctx.static_sym::<u64>(n);
        let dynsrc = ctx.shmalloc::<u64>(n);
        let s2 = ctx.static_sym::<u64>(n);
        ctx.barrier_all();
        let mut sd = 0.0;
        let mut ss = 0.0;
        if me == 0 {
            let t0 = ctx.time_ns();
            ctx.put_sym(&s1, 0, &dynsrc, 0, n, 1); // static-dynamic
            sd = ctx.time_ns() - t0;
            let t1 = ctx.time_ns();
            ctx.put_sym(&s2, 0, &s1, 0, n, 1); // static-static
            ss = ctx.time_ns() - t1;
        }
        ctx.barrier_all();
        (sd, ss)
    });
    let (sd, ss) = out.values[0];
    assert!(
        ss > sd,
        "static-static (extra copy) must cost more than static-dynamic: {ss} !> {sd}"
    );
}

#[test]
fn timed_collectives_correct_under_virtual_time() {
    let out = launch_timed(&cfg(8), |ctx| {
        let me = ctx.my_pe();
        let n = 128;
        let src = ctx.shmalloc::<u32>(n);
        let dst = ctx.shmalloc::<u32>(n * ctx.n_pes());
        ctx.local_write(&src, 0, &vec![me as u32; n]);
        ctx.fcollect(&dst, &src, n, ctx.world());
        let all = ctx.local_read(&dst, 0, n * ctx.n_pes());
        for pe in 0..ctx.n_pes() {
            assert!(all[pe * n..(pe + 1) * n].iter().all(|v| *v == pe as u32));
        }
        true
    });
    assert!(out.values.iter().all(|v| *v));
}

#[test]
fn timed_atomics_and_locks() {
    let out = launch_timed(&cfg(4), |ctx| {
        let counter = ctx.shmalloc::<u64>(1);
        let lock = ctx.shmalloc::<i64>(1);
        ctx.local_write(&counter, 0, &[0u64]);
        ctx.local_write(&lock, 0, &[0i64]);
        ctx.barrier_all();
        for _ in 0..10 {
            ctx.set_lock(&lock);
            let v = ctx.g(&counter, 0, 0);
            ctx.p(&counter, 0, v + 1, 0);
            ctx.quiet();
            ctx.clear_lock(&lock);
        }
        ctx.fadd(&counter, 0, 1u64, 0);
        ctx.barrier_all();
        ctx.g(&counter, 0, 0)
    });
    assert!(out.values.iter().all(|v| *v == 44)); // 4*10 + 4
}

#[test]
fn timed_spin_barrier_matches_calibration() {
    let cfg36 = RuntimeConfig::new(36)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
        .with_algos(Algorithms {
            barrier: BarrierAlgo::TmcSpin,
            ..Default::default()
        });
    let out = launch_timed(&cfg36, |ctx| {
        ctx.barrier_all();
        let t0 = ctx.time_ns();
        ctx.barrier_all();
        ctx.time_ns() - t0
    });
    // Fig 5 calibration: TMC spin at 36 tiles on the Gx is ~1.5 us.
    let us = out.values[0] / 1000.0;
    assert!((1.0..2.5).contains(&us), "spin barrier {us} us");
}

#[test]
fn cycle_box_mode_runs_protocols_correctly() {
    let out = launch_timed(&cfg(6).with_cycle_box(), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u64>(32);
        let next = (me + 1) % ctx.n_pes();
        ctx.put(&buf, 0, &vec![me as u64; 32], next);
        ctx.barrier_all();
        let prev = (me + ctx.n_pes() - 1) % ctx.n_pes();
        assert_eq!(ctx.local_read(&buf, 0, 32), vec![prev as u64; 32]);
        let v = ctx.shmalloc::<i64>(8);
        let d = ctx.shmalloc::<i64>(8);
        ctx.local_write(&v, 0, &[me as i64; 8]);
        ctx.sum_to_all(&d, &v, 8, ctx.world());
        ctx.barrier_all();
        ctx.local_read(&d, 0, 1)[0]
    });
    assert!(out.values.iter().all(|v| *v == 15)); // 0+1+..+5
    assert!(out.makespan.ns_f64() > 0.0);
}

#[test]
fn cycle_box_runs_are_deterministic_and_converge_with_event_driven() {
    let run = |cfg: RuntimeConfig| {
        let out = launch_timed(&cfg, |ctx| {
            let me = ctx.my_pe();
            let n = ctx.n_pes();
            let cell = ctx.shmalloc::<u64>(n);
            ctx.local_write(&cell, 0, &vec![0u64; n]);
            ctx.barrier_all();
            for round in 0..4u64 {
                let dst = (me + round as usize + 1) % n;
                ctx.fadd(&cell, me, me as u64 + round, dst);
                ctx.barrier_all();
            }
            ctx.local_read(&cell, 0, n)
        });
        out.values
    };
    let ed = run(cfg(5));
    let cb1 = run(cfg(5).with_cycle_box());
    let cb2 = run(cfg(5).with_cycle_box());
    assert_eq!(cb1, cb2, "cycle-box runs must be deterministic");
    assert_eq!(
        ed, cb1,
        "cycle-box final state must converge with event-driven"
    );
}
