//! Multi-chip engine tests: correctness is identical to single-chip;
//! costs change exactly at the chip boundary.

use tshmem::prelude::*;
use tshmem::runtime::{launch_multichip, launch_multichip_watched, launch_timed};
use tshmem::types::ReduceOp;
use tshmem::TimedWatch;

fn cfg(pes_per_chip: usize) -> RuntimeConfig {
    RuntimeConfig::new(pes_per_chip)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_temp_bytes(1 << 12)
}

#[test]
fn multichip_results_match_single_chip() {
    fn workload(ctx: &ShmemCtx) -> Vec<i64> {
        let me = ctx.my_pe();
        let n = ctx.n_pes();
        let v = ctx.shmalloc::<i64>(32);
        let d = ctx.shmalloc::<i64>(32);
        let g = ctx.shmalloc::<i64>(32 * n);
        ctx.local_write(&v, 0, &vec![(me as i64 + 1) * 3; 32]);
        ctx.barrier_all();
        ctx.put_sym(&v, 16, &v, 0, 16, (me + 1) % n);
        ctx.barrier_all();
        ctx.reduce(ReduceOp::Sum, &d, &v, 32, ctx.world());
        ctx.fcollect(&g, &v, 32, ctx.world());
        let mut out = ctx.local_read(&d, 0, 4);
        out.extend(ctx.local_read(&g, 0, 32 * n));
        out
    }
    // 2 chips x 3 PEs vs one 6-PE chip: identical answers.
    let multi = launch_multichip(&cfg(3), 2, workload);
    let single = launch_timed(&cfg(6), workload);
    assert_eq!(multi.values, single.values);
}

#[test]
fn cross_chip_put_much_slower_than_intra_chip() {
    let out = launch_multichip(&cfg(2), 2, |ctx| {
        // PEs 0,1 on chip 0; PEs 2,3 on chip 1.
        let v = ctx.shmalloc::<u64>(8192);
        ctx.barrier_all();
        let mut bulk = (0.0, 0.0);
        let mut tiny = (0.0, 0.0);
        if ctx.my_pe() == 0 {
            let measure = |n: usize| {
                ctx.put_sym(&v, 0, &v, 0, n, 1); // warm
                ctx.put_sym(&v, 0, &v, 0, n, 2);
                let t0 = ctx.time_ns();
                ctx.put_sym(&v, 0, &v, 0, n, 1); // same chip
                let intra = ctx.time_ns() - t0;
                let t1 = ctx.time_ns();
                ctx.put_sym(&v, 0, &v, 0, n, 2); // cross chip
                (intra, ctx.time_ns() - t1)
            };
            bulk = measure(8192);
            tiny = measure(1);
        }
        ctx.barrier_all();
        (bulk, tiny)
    });
    let (bulk, tiny) = out.values[0];
    // Bulk transfers: the 10 Gbps link is slower than on-chip copies.
    assert!(
        bulk.1 > 1.5 * bulk.0,
        "64 kB cross-chip put must be slower: {bulk:?}"
    );
    // Tiny transfers: microsecond mPIPE latency vs nanosecond memcpy.
    assert!(
        tiny.1 > 20.0 * tiny.0,
        "8 B cross-chip put is latency-dominated: {tiny:?}"
    );
}

#[test]
fn cross_chip_bandwidth_capped_by_link_rate() {
    let big = cfg(1).with_partition_bytes(10 << 20);
    let out = launch_multichip(&big, 2, |ctx| {
        let n = 1 << 20; // 8 MB of u64
        let v = ctx.shmalloc::<u64>(n);
        ctx.barrier_all();
        let mut bw = 0.0;
        if ctx.my_pe() == 0 {
            ctx.put_sym(&v, 0, &v, 0, n, 1); // warm
            let t0 = ctx.time_ns();
            ctx.put_sym(&v, 0, &v, 0, n, 1);
            let dt = ctx.time_ns() - t0;
            bw = (n * 8) as f64 / dt * 1000.0; // MB/s
        }
        ctx.barrier_all();
        bw
    });
    let bw = out.values[0];
    // 10 Gbps line rate is 1250 MB/s; staging copies cost extra.
    assert!(
        (200.0..1250.0).contains(&bw),
        "cross-chip bandwidth {bw} MB/s should be link-bound"
    );
}

#[test]
fn cross_chip_barrier_in_microseconds() {
    let single = launch_timed(&cfg(8), |ctx| {
        ctx.barrier_all();
        let t0 = ctx.time_ns();
        ctx.barrier_all();
        ctx.time_ns() - t0
    });
    let multi = launch_multichip(&cfg(4), 2, |ctx| {
        ctx.barrier_all();
        let t0 = ctx.time_ns();
        ctx.barrier_all();
        ctx.time_ns() - t0
    });
    let s = single.values[0] / 1e3;
    let m = multi.values[0] / 1e3;
    // Two mPIPE crossings per ring phase: tens of microseconds.
    assert!(m > 3.0 * s, "multichip barrier {m} us vs single {s} us");
    assert!(m < 100.0, "but still bounded: {m} us");
}

#[test]
fn cross_chip_atomics_pay_round_trip() {
    let out = launch_multichip(&cfg(1), 2, |ctx| {
        let c = ctx.shmalloc::<u64>(1);
        ctx.local_write(&c, 0, &[0u64]);
        ctx.barrier_all();
        let mut local_ns = 0.0;
        let mut remote_ns = 0.0;
        if ctx.my_pe() == 1 {
            let t0 = ctx.time_ns();
            ctx.fadd(&c, 0, 1u64, 1); // own chip
            local_ns = ctx.time_ns() - t0;
            let t1 = ctx.time_ns();
            ctx.fadd(&c, 0, 1u64, 0); // other chip
            remote_ns = ctx.time_ns() - t1;
        }
        ctx.barrier_all();
        assert_eq!(ctx.g(&c, 0, 0), 1);
        (local_ns, remote_ns)
    });
    let (l, r) = out.values[1];
    assert!(r > 20.0 * l, "cross-chip atomic round trip: {r} ns vs {l} ns");
}

#[test]
fn multichip_is_deterministic() {
    let run = || {
        let out = launch_multichip(&cfg(2), 3, |ctx| {
            let v = ctx.shmalloc::<i64>(16);
            let d = ctx.shmalloc::<i64>(16);
            ctx.local_write(&v, 0, &[ctx.my_pe() as i64; 16]);
            ctx.sum_to_all(&d, &v, 16, ctx.world());
            (ctx.local_read(&d, 0, 1)[0], ctx.time_ns() as u64)
        });
        out.values
    };
    assert_eq!(run(), run());
}

#[test]
fn multichip_records_a_trace_with_link_events() {
    let out = launch_multichip(&cfg(2).with_trace(), 2, |ctx| {
        let v = ctx.shmalloc::<u64>(64);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            ctx.put_sym(&v, 0, &v, 0, 64, 2); // cross-chip put
        }
        ctx.barrier_all();
    });
    let trace = out.trace.expect("with_trace() must yield a trace");
    assert!(!trace.is_empty(), "multichip trace must not be empty");
    use tshmem::trace::TraceKind;
    let kinds: Vec<_> = trace.iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&TraceKind::Link),
        "cross-chip traffic must appear as Link events: {kinds:?}"
    );
    assert!(kinds.contains(&TraceKind::UdnSend), "protocol sends traced");
    assert!(kinds.contains(&TraceKind::Copy), "data movement traced");
    // Link events name the far chip, which exists.
    assert!(trace
        .iter()
        .filter(|e| e.kind == TraceKind::Link)
        .all(|e| e.peer < 2 && e.bytes > 0));
}

#[test]
fn multichip_watched_completes_clean_jobs() {
    let watch = std::sync::Arc::new(TimedWatch::new());
    let out = launch_multichip_watched(&cfg(2), 2, &watch, |ctx| {
        let v = ctx.shmalloc::<i64>(8);
        ctx.local_write(&v, 0, &[ctx.my_pe() as i64; 8]);
        ctx.barrier_all();
        ctx.g(&v, 0, (ctx.my_pe() + 1) % ctx.n_pes())
    })
    .expect("clean job must not trip the watchdog");
    assert_eq!(out.values.len(), 4);
    assert!(watch.stall_report().is_none());
}

#[test]
fn multichip_watched_diagnoses_mismatched_barrier() {
    // PE 3 (on chip 1) skips the second barrier: the job can never
    // finish, the coop scheduler's drained-queue detector fires, and
    // the report labels each PE with its chip.
    let watch = std::sync::Arc::new(TimedWatch::new());
    let err = match launch_multichip_watched(&cfg(2), 2, &watch, |ctx| {
        ctx.barrier_all();
        if ctx.my_pe() != 3 {
            ctx.barrier_all(); // PE 3 bails out instead
        }
    }) {
        Ok(_) => panic!("mismatched barrier must be caught"),
        Err(report) => report,
    };
    assert!(
        err.contains("virtual event queue drained"),
        "watchdog header missing: {err}"
    );
    assert!(
        err.contains("per-PE stall diagnosis (4 PEs):"),
        "per-PE section missing: {err}"
    );
    assert!(
        err.contains("PE 0 (chip 0)") && err.contains("PE 3 (chip 1)"),
        "chip labels missing: {err}"
    );
    assert!(err.contains("finished"), "PE 3 finished early: {err}");
}

#[test]
fn one_chip_multichip_degenerates_to_timed() {
    // chips = 1 must behave like launch_timed semantically.
    let multi = launch_multichip(&cfg(4), 1, |ctx| {
        let v = ctx.shmalloc::<u32>(4);
        ctx.p(&v, 0, 7u32, (ctx.my_pe() + 1) % ctx.n_pes());
        ctx.barrier_all();
        ctx.g(&v, 0, ctx.my_pe())
    });
    assert_eq!(multi.values, vec![7, 7, 7, 7]);
}
