//! The OpenSHMEM 1.3/1.4 surface: non-blocking RMA completion
//! semantics (fence vs quiet), indexed `wait_until`, `put_signal`,
//! `alltoall(s)`, and teams — including the team-vs-active-set
//! collective equivalence the `Team` docs promise.

use tshmem::api::{shmem_put_nbi, shmem_put_signal, shmem_wait_until, shmem_wait_until_at};
use tshmem::prelude::*;
use tshmem::runtime::{launch, launch_timed};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 18)
        .with_temp_bytes(1 << 12)
}

/// The satellite negative test: `shmem_fence` orders but must NOT
/// complete pending non-blocking operations — only `shmem_quiet` does.
/// Before the fix, fence aliased quiet and this distinction was
/// unobservable.
#[test]
fn fence_after_put_nbi_leaves_op_pending() {
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u64>(8);
        ctx.local_fill(&buf, 0u64);
        ctx.barrier_all();
        if me == 0 {
            let s0 = ctx.stats();
            ctx.put_nbi(&buf, 0, &[7u64, 8, 9], 1);
            assert_eq!(ctx.pending_nbi_ops(), 1, "put_nbi to a remote heap must defer");
            ctx.fence();
            assert_eq!(
                ctx.pending_nbi_ops(),
                1,
                "fence completed the pending nbi op — it must only order, not drain"
            );
            ctx.quiet();
            assert_eq!(ctx.pending_nbi_ops(), 0, "quiet must drain the pending set");
            let s1 = ctx.stats();
            assert_eq!(s1.nbi_puts - s0.nbi_puts, 1);
            assert_eq!(s1.fences - s0.fences, 1, "fence must count separately");
            assert_eq!(s1.quiets - s0.quiets, 1);
        }
        ctx.barrier_all();
        if me == 1 {
            assert_eq!(ctx.local_read(&buf, 0, 3), vec![7, 8, 9]);
        }
    });
}

/// A blocking RMA to the same destination flushes the pending nbi ops
/// to that PE first (program order per destination), and a later nbi op
/// in the same train overwrites an earlier one at drain.
#[test]
fn pending_ops_complete_in_issue_order() {
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u64>(4);
        ctx.local_fill(&buf, 0u64);
        ctx.barrier_all();
        if me == 0 {
            ctx.put_nbi(&buf, 0, &[1u64], 1);
            ctx.put_nbi(&buf, 0, &[2u64], 1);
            // Blocking get from PE 1 must observe the *second* put.
            let mut got = [0u64];
            ctx.get(&mut got, &buf, 0, 1);
            assert_eq!(got[0], 2, "get must flush pending puts to its source in issue order");
            assert_eq!(ctx.pending_nbi_ops(), 0);
        }
        ctx.barrier_all();
    });
}

/// Static-segment nbi puts ride the temp-chunked redirection path; the
/// data still must not be assumed delivered until quiet.
#[test]
fn static_put_nbi_round_trips_through_temp() {
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let st = ctx.static_sym::<u64>(64);
        ctx.local_fill(&st, 0u64);
        ctx.barrier_all();
        if me == 0 {
            // 64 elements through a small temp forces several chunks.
            let vals: Vec<u64> = (0..64).map(|i| 1000 + i as u64).collect();
            shmem_put_nbi(ctx, &st, &vals, 1);
            ctx.quiet();
        }
        ctx.barrier_all();
        if me == 1 {
            let got = ctx.local_read(&st, 0, 64);
            assert_eq!(got[0], 1000);
            assert_eq!(got[63], 1063);
        }
    });
}

/// `get_sym_nbi` with a static source is the genuinely deferred
/// redirected read: issued at call time, reply awaited at quiet.
#[test]
fn get_sym_nbi_defers_the_redirect_reply() {
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let st = ctx.static_sym::<u64>(8);
        let heap = ctx.shmalloc::<u64>(8);
        ctx.local_fill(&heap, 0u64);
        let pat: Vec<u64> = (0..8).map(|i| me as u64 * 100 + i as u64).collect();
        ctx.local_write(&st, 0, &pat);
        ctx.barrier_all();
        if me == 0 {
            ctx.get_sym_nbi(&heap, 0, &st, 0, 8, 1);
            assert_eq!(ctx.pending_nbi_ops(), 1, "redirected static read must defer its reply");
            ctx.quiet();
            assert_eq!(ctx.local_read(&heap, 0, 8), (0..8).map(|i| 100 + i).collect::<Vec<_>>());
        }
        ctx.barrier_all();
    });
}

/// The satellite pin: indexed `wait_until` at a non-zero element, on
/// the native engine.
#[test]
fn wait_until_at_nonzero_index_native() {
    launch(&cfg(2), |ctx| {
        wait_at_index_body(ctx);
    });
}

/// Same pin on the timed engine: virtual-time waits must poll the same
/// (correct) element.
#[test]
fn wait_until_at_nonzero_index_timed() {
    launch_timed(&cfg(2), |ctx| {
        wait_at_index_body(ctx);
    });
}

fn wait_at_index_body(ctx: &ShmemCtx) {
    let me = ctx.my_pe();
    let flags = ctx.shmalloc::<u64>(4);
    ctx.local_fill(&flags, 0u64);
    ctx.barrier_all();
    if me == 0 {
        // Element 0 deliberately stays 0 forever: a wait that secretly
        // polls element 0 (the pre-fix wrapper) would hang here and the
        // engine watchdog/timeout would flag it.
        ctx.p(&flags, 3, 42u64, 1);
    } else {
        shmem_wait_until_at(ctx, &flags, 3, Cmp::Ge, 42u64);
        assert_eq!(ctx.local_read(&flags, 0, 1)[0], 0, "element 0 must be untouched");
        // The old entry point routes through index 0 — check it still
        // works for the flag that does live there.
        ctx.p(&flags, 0, 7u64, 1);
        shmem_wait_until(ctx, &flags, Cmp::Eq, 7u64);
    }
    ctx.barrier_all();
}

/// `put_signal` delivers payload-then-signal: an indexed wait on the
/// signal word implies the payload has landed. Covers both `Set` and
/// `Add` signal operators around a ring.
#[test]
fn put_signal_ring_set_and_add() {
    let n = 4;
    launch(&cfg(n), |ctx| {
        let me = ctx.my_pe();
        let npes = ctx.n_pes();
        let data = ctx.shmalloc::<u64>(npes * 2);
        let sig = ctx.shmalloc::<u64>(4);
        ctx.local_fill(&data, 0u64);
        ctx.local_fill(&sig, 0u64);
        ctx.barrier_all();
        let next = (me + 1) % npes;
        let prev = (me + npes - 1) % npes;
        // Round 1: Set the signal word at index 2.
        let payload = [me as u64 + 1, me as u64 + 100];
        shmem_put_signal(
            ctx,
            &data.slice(me * 2, 2),
            &payload,
            &sig,
            2,
            1,
            SignalOp::Set,
            next,
        );
        shmem_wait_until_at(ctx, &sig, 2, Cmp::Ge, 1u64);
        assert_eq!(
            ctx.local_read(&data, prev * 2, 2),
            vec![prev as u64 + 1, prev as u64 + 100],
            "signal observed but payload missing: put_signal ordering broken"
        );
        // Round 2 reuses the payload slots — everyone must be done
        // reading round 1 before the next hop may overwrite them.
        ctx.barrier_all();
        // Add on the same word pushes it to 2.
        ctx.put_signal(&data, me * 2, &[7u64, 8], &sig, 2, 1, SignalOp::Add, next);
        ctx.wait_until(&sig, 2, Cmp::Ge, 2);
        assert_eq!(ctx.local_read(&data, prev * 2, 2), vec![7, 8]);
        ctx.barrier_all();
    });
}

/// `alltoall` over the world set: member j's dest block i holds member
/// i's source block j.
#[test]
fn alltoall_exchanges_blocks() {
    let n = 4;
    launch(&cfg(n), |ctx| {
        let me = ctx.my_pe();
        let npes = ctx.n_pes();
        let nelems = 3;
        let src = ctx.shmalloc::<u64>(npes * nelems);
        let dst = ctx.shmalloc::<u64>(npes * nelems);
        let mine: Vec<u64> = (0..npes * nelems)
            .map(|k| (me * 1000 + k) as u64)
            .collect();
        ctx.local_write(&src, 0, &mine);
        ctx.local_fill(&dst, 0u64);
        ctx.alltoall(&dst, &src, nelems, ctx.world());
        let got = ctx.local_read(&dst, 0, npes * nelems);
        for i in 0..npes {
            for k in 0..nelems {
                assert_eq!(
                    got[i * nelems + k],
                    (i * 1000 + me * nelems + k) as u64,
                    "PE {me}: block from {i} wrong at {k}"
                );
            }
        }
    });
}

/// `alltoalls` strided layout matches the spec: element k of the block
/// from set-rank i lands at `dest[i*dst*nelems + k*dst]`.
#[test]
fn alltoalls_strided_layout() {
    let n = 3;
    launch(&cfg(n), |ctx| {
        let me = ctx.my_pe();
        let npes = ctx.n_pes();
        let (dst_st, sst, nelems) = (2usize, 3usize, 2usize);
        let src = ctx.shmalloc::<u64>(npes * sst * nelems);
        let dst = ctx.shmalloc::<u64>(npes * dst_st * nelems);
        let mine: Vec<u64> = (0..src.len()).map(|k| (me * 1000 + k) as u64).collect();
        ctx.local_write(&src, 0, &mine);
        ctx.local_fill(&dst, u64::MAX);
        ctx.alltoalls(&dst, &src, dst_st, sst, nelems, ctx.world());
        let got = ctx.local_read(&dst, 0, dst.len());
        for i in 0..npes {
            for k in 0..nelems {
                let want = (i * 1000 + (me * sst * nelems) + k * sst) as u64;
                assert_eq!(got[i * dst_st * nelems + k * dst_st], want);
            }
        }
        // Holes between strided elements are untouched.
        assert_eq!(got[1], u64::MAX);
    });
}

/// The equivalence the team docs promise: a team collective and the
/// equivalent active-set collective produce the same memory state *and*
/// the same `Stats` deltas (same algorithm, same PEs, same traffic).
#[test]
fn team_collectives_match_active_set_collectives() {
    let n = 4;
    launch(&cfg(n), |ctx| {
        let me = ctx.my_pe();
        let npes = ctx.n_pes();
        let src = ctx.shmalloc::<i64>(8);
        let d_set = ctx.shmalloc::<i64>(npes * 8);
        let d_team = ctx.shmalloc::<i64>(npes * 8);
        let vals: Vec<i64> = (0..8).map(|i| (me as i64 + 1) * 10 + i).collect();
        ctx.local_write(&src, 0, &vals);
        ctx.local_fill(&d_set, 0i64);
        ctx.local_fill(&d_team, 0i64);
        ctx.barrier_all();
        let world = ctx.world();
        let team = ctx.team_world();
        assert_eq!(team.my_pe(), me);
        assert_eq!(team.n_pes(), npes);

        // broadcast
        let before = ctx.stats();
        ctx.broadcast(&d_set, &src, 8, 1, world);
        let mid = ctx.stats();
        team.broadcast(ctx, &d_team, &src, 8, 1);
        let after = ctx.stats();
        assert_eq!(
            ctx.local_read(&d_set, 0, 8),
            ctx.local_read(&d_team, 0, 8),
            "team broadcast diverged from active-set broadcast"
        );
        assert_eq!(
            mid.barriers - before.barriers,
            after.barriers - mid.barriers,
            "team broadcast ran a different barrier pattern"
        );
        assert_eq!(mid.collectives - before.collectives, after.collectives - mid.collectives);

        // reduce
        ctx.reduce(ReduceOp::Sum, &d_set, &src, 8, world);
        team.reduce(ctx, ReduceOp::Sum, &d_team, &src, 8);
        assert_eq!(ctx.local_read(&d_set, 0, 8), ctx.local_read(&d_team, 0, 8));

        // fcollect
        ctx.fcollect(&d_set, &src, 8, world);
        team.fcollect(ctx, &d_team, &src, 8);
        assert_eq!(ctx.local_read(&d_set, 0, npes * 8), ctx.local_read(&d_team, 0, npes * 8));

        // alltoall
        ctx.alltoall(&d_set, &src, 2, world);
        team.alltoall(ctx, &d_team, &src, 2);
        assert_eq!(ctx.local_read(&d_set, 0, npes * 2), ctx.local_read(&d_team, 0, npes * 2));
        ctx.barrier_all();
    });
}

/// Collectives on a strided sub-team only involve (and only write) the
/// members; the split returns `None` elsewhere.
#[test]
fn sub_team_collective_leaves_non_members_alone() {
    let n = 4;
    launch(&cfg(n), |ctx| {
        let me = ctx.my_pe();
        let src = ctx.shmalloc::<u64>(4);
        let dst = ctx.shmalloc::<u64>(4);
        ctx.local_write(&src, 0, &[me as u64 + 1; 4]);
        ctx.local_fill(&dst, 0u64);
        ctx.barrier_all();
        // Evens team: {0, 2}.
        match ctx.team_world().split_strided(0, 1, 2) {
            Some(team) => {
                assert!(me % 2 == 0);
                team.reduce(ctx, ReduceOp::Sum, &dst, &src, 4);
                // 1 + 3 (PE values +1) = members 0 and 2 contribute 1 and 3.
                assert_eq!(ctx.local_read(&dst, 0, 4), vec![4u64; 4]);
            }
            None => {
                assert!(me % 2 == 1, "even PE wrongly excluded from the evens team");
            }
        }
        ctx.barrier_all();
        if me % 2 == 1 {
            assert_eq!(ctx.local_read(&dst, 0, 4), vec![0u64; 4], "non-member dest written");
        }
    });
}

/// Teams work on the timed engine too (same protocol code, virtual
/// time), including nbi completion at quiet.
#[test]
fn timed_engine_runs_nbi_and_teams() {
    launch_timed(&cfg(4), |ctx| {
        let me = ctx.my_pe();
        let npes = ctx.n_pes();
        let buf = ctx.shmalloc::<u64>(npes);
        ctx.local_fill(&buf, 0u64);
        ctx.barrier_all();
        ctx.put_nbi(&buf, me, &[me as u64 + 1], (me + 1) % npes);
        assert_eq!(ctx.pending_nbi_ops(), 1);
        ctx.fence();
        assert_eq!(ctx.pending_nbi_ops(), 1, "fence must not drain on the timed engine either");
        ctx.quiet();
        assert_eq!(ctx.pending_nbi_ops(), 0);
        ctx.barrier_all();
        let prev = (me + npes - 1) % npes;
        assert_eq!(ctx.local_read(&buf, prev, 1)[0], prev as u64 + 1);
        // A quick team alltoall for coverage of the timed service path.
        let src = ctx.shmalloc::<u64>(npes);
        let dst = ctx.shmalloc::<u64>(npes);
        ctx.local_write(&src, 0, &(0..npes).map(|k| (me * 10 + k) as u64).collect::<Vec<_>>());
        ctx.team_world().alltoall(ctx, &dst, &src, 1);
        let got = ctx.local_read(&dst, 0, npes);
        for (i, g) in got.iter().enumerate() {
            assert_eq!(*g, (i * 10 + me) as u64);
        }
    });
}
