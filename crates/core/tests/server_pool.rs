//! The multi-tenant server pool: admission control, per-job fault
//! isolation, load shedding, and cross-tenant arena-recycling hygiene.
//!
//! No global fault plane is installed here (those tests live in their
//! own binaries per the `tshmem::fault` rule); hostile tenants are
//! modeled with plain panicking closures.

use std::sync::Arc;
use std::time::Duration;

use substrate::sync::{Condvar, Mutex};
use tshmem::{JobOutcome, JobSpec, RuntimeConfig, Server, ServerConfig, ShedPolicy, SubmitError};

fn small_cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(256 * 1024)
        .with_private_bytes(64 * 1024)
        .with_temp_bytes(16 * 1024)
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        workers: 4,
        ..Default::default()
    }
}

/// A latch tenants can park on without tripping the watchdog (the test
/// raises the stall window when it uses this).
#[derive(Default)]
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn release(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

#[test]
fn quotas_reject_oversized_jobs() {
    let server = Server::round_robin(ServerConfig {
        max_npes: 4,
        max_partition_bytes: 1024 * 1024,
        ..server_cfg()
    });
    let err = server
        .submit(JobSpec::new(small_cfg(8), |_| {}))
        .expect_err("8 PEs over a 4-PE quota");
    assert_eq!(err, SubmitError::TooManyPes { requested: 8, quota: 4 });
    let err = server
        .submit(JobSpec::new(
            small_cfg(2).with_partition_bytes(2 * 1024 * 1024),
            |_| {},
        ))
        .expect_err("2MB partitions over a 1MB quota");
    assert_eq!(
        err,
        SubmitError::HeapQuota { requested: 2 * 1024 * 1024, quota: 1024 * 1024 }
    );
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.submitted, 0);
}

#[test]
fn full_queue_rejects_with_retry_after() {
    let latch = Arc::new(Latch::default());
    let server = Server::round_robin(ServerConfig {
        workers: 2,
        queue_depth: 2,
        // The blocker parks outside the fabric; keep the watchdog far away.
        stall: Duration::from_secs(120),
        ..Default::default()
    });
    // Fills both worker slots and parks, so everything behind it queues.
    let l = latch.clone();
    let blocker = server
        .submit(JobSpec::new(small_cfg(2), move |ctx| {
            if ctx.my_pe() == 0 {
                l.wait();
            }
            ctx.barrier_all();
        }))
        .expect("blocker admitted");
    // Wait until the blocker is dispatched (leaves the queue).
    while server.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued: Vec<_> = (0..2)
        .map(|_| server.submit(JobSpec::new(small_cfg(2), |_| {})).expect("fits in queue"))
        .collect();
    let err = server
        .submit(JobSpec::new(small_cfg(2), |_| {}))
        .expect_err("third submission finds the depth-2 queue full");
    match err {
        SubmitError::QueueFull { retry_after } => {
            assert!(retry_after >= Duration::from_millis(1), "hint must be usable");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    latch.release();
    assert!(blocker.wait().outcome.is_completed());
    for h in queued {
        assert!(h.wait().outcome.is_completed());
    }
    let stats = server.shutdown();
    assert_eq!((stats.submitted, stats.rejected, stats.completed), (3, 1, 3));
}

#[test]
fn drop_oldest_sheds_the_queue_head() {
    let latch = Arc::new(Latch::default());
    let server = Server::round_robin(ServerConfig {
        workers: 2,
        queue_depth: 1,
        shed: ShedPolicy::DropOldest,
        stall: Duration::from_secs(120),
        ..Default::default()
    });
    let l = latch.clone();
    let blocker = server
        .submit(JobSpec::new(small_cfg(2), move |ctx| {
            if ctx.my_pe() == 0 {
                l.wait();
            }
            ctx.barrier_all();
        }))
        .expect("blocker admitted");
    while server.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim = server.submit(JobSpec::new(small_cfg(2), |_| {})).expect("queued");
    let survivor = server.submit(JobSpec::new(small_cfg(2), |_| {})).expect("sheds the victim");
    let shed = victim.wait();
    assert!(shed.outcome.is_shed(), "oldest queued job load-shed: {:?}", shed.outcome);
    latch.release();
    assert!(blocker.wait().outcome.is_completed());
    assert!(survivor.wait().outcome.is_completed());
    let stats = server.shutdown();
    assert_eq!((stats.shed, stats.completed), (1, 2));
}

#[test]
fn tenant_panic_faults_only_that_job() {
    let server = Server::fair(server_cfg());
    let mut handles = Vec::new();
    for i in 0..6u32 {
        let spec = if i == 2 {
            JobSpec::new(small_cfg(2), |ctx| {
                if ctx.my_pe() == 1 {
                    panic!("hostile tenant payload");
                }
                ctx.barrier_all();
            })
            .with_tenant(i)
        } else {
            JobSpec::new(small_cfg(2), |ctx| {
                let n = ctx.n_pes();
                let me = ctx.my_pe();
                let ring = ctx.shmalloc::<u64>(1);
                ctx.local_write(&ring, 0, &[0]);
                ctx.barrier_all();
                ctx.p(&ring, 0, me as u64 + 1, (me + 1) % n);
                ctx.barrier_all();
                let got = ctx.local_read(&ring, 0, 1)[0];
                assert_eq!(got, ((me + n - 1) % n) as u64 + 1);
            })
            .with_tenant(i)
        };
        handles.push((i, server.submit(spec).expect("admitted")));
    }
    for (i, h) in handles {
        let report = h.wait();
        if i == 2 {
            match &report.outcome {
                JobOutcome::Faulted { error, .. } => {
                    // Either the origin's message or a sibling's
                    // secondary abort panic, depending on join order.
                    assert!(
                        error.contains("hostile tenant payload") || error.contains("aborting"),
                        "unexpected fault message: {error}"
                    );
                }
                other => panic!("hostile job should fault, got {other:?}"),
            }
        } else {
            assert!(
                report.outcome.is_completed(),
                "healthy tenant {i} harmed by the hostile one: {:?}",
                report.outcome
            );
        }
    }
    let stats = server.shutdown();
    assert_eq!((stats.completed, stats.faulted), (5, 1));
}

/// Cross-tenant leak regression: a recycled heap shard must never carry
/// the previous tenant's bytes — zeroed in release, poison-patterned
/// under `debug_assertions`.
#[test]
fn recycled_arenas_never_leak_tenant_bytes() {
    const SECRET: u64 = 0xDEAD_BEEF_CAFE_F00D;
    let server = Server::round_robin(ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let cfg = small_cfg(2);
    // Tenant A fills its symmetric heap with a secret and completes
    // cleanly, retiring its shard set into the recycling pool.
    server
        .submit(JobSpec::new(cfg, |ctx| {
            let buf = ctx.shmalloc::<u64>(64);
            ctx.local_fill(&buf, SECRET);
            ctx.barrier_all();
        }))
        .expect("tenant A admitted")
        .wait();
    // Tenant B gets the same geometry and reads its heap *without
    // writing first* — nothing of tenant A may show through.
    let report = server
        .submit(JobSpec::new(cfg, |ctx| {
            let buf = ctx.shmalloc::<u64>(64);
            let got = ctx.local_read(&buf, 0, 64);
            let expect = if cfg!(debug_assertions) {
                u64::from_ne_bytes([0xA5; 8])
            } else {
                0
            };
            for (i, v) in got.iter().enumerate() {
                assert_ne!(*v, SECRET, "tenant A's secret leaked at word {i}");
                assert_eq!(*v, expect, "recycled heap not scrubbed at word {i}");
            }
        }))
        .expect("tenant B admitted")
        .wait();
    assert!(report.outcome.is_completed(), "{:?}", report.outcome);
    let stats = server.shutdown();
    assert!(
        stats.arenas_recycled >= 1,
        "tenant B must actually exercise recycling (stats: {stats:?})"
    );
}

#[test]
fn shutdown_sheds_queued_jobs_and_resolves_every_handle() {
    let latch = Arc::new(Latch::default());
    let server = Server::round_robin(ServerConfig {
        workers: 2,
        queue_depth: 8,
        stall: Duration::from_secs(120),
        ..Default::default()
    });
    let l = latch.clone();
    let blocker = server
        .submit(JobSpec::new(small_cfg(2), move |ctx| {
            if ctx.my_pe() == 0 {
                l.wait();
            }
            ctx.barrier_all();
        }))
        .expect("blocker admitted");
    while server.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued: Vec<_> = (0..3)
        .map(|_| server.submit(JobSpec::new(small_cfg(2), |_| {})).expect("queued"))
        .collect();
    // Shutdown from another thread (it blocks on the running job);
    // release the latch so the blocker can drain.
    let shutter = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    latch.release();
    let stats = shutter.join().expect("shutdown thread");
    assert!(blocker.wait().outcome.is_completed());
    for h in queued {
        assert!(h.wait().outcome.is_shed(), "queued jobs shed at shutdown");
    }
    assert_eq!((stats.completed, stats.shed), (1, 3));
}
