//! Regression pins for the RMA batched fast paths.
//!
//! A unit-stride `iget` must be **one logical get and one `Copy` trace
//! event** on both engines — the pre-fix dynamic-class path issued one
//! traced `arena_read` (and one progress bump) per element, so an
//! N-element get cost N events and N fabric calls.

use tshmem::prelude::*;
use tshmem::trace::{TraceEvent, TraceKind};
use tshmem::{Launcher, NativeBackend};

/// Distinctive element count so the get's Copy event is identifiable by
/// size among the workload's other copies.
const NELEMS: usize = 997;
const NPES: usize = 4;

fn cfg() -> RuntimeConfig {
    RuntimeConfig::new(NPES)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
        .with_trace()
}

/// Each PE fills its own source array (a copy of a *different* byte
/// size than the get), then pulls `NELEMS` elements from its right
/// neighbor at unit stride on both sides. Returns the PE's `gets`
/// counter.
fn workload(ctx: &ShmemCtx) -> u64 {
    let src = ctx.shmalloc::<u64>(NELEMS + 3);
    let base = (ctx.my_pe() as u64) << 32;
    let vals: Vec<u64> = (0..(NELEMS + 3) as u64).map(|i| base + i).collect();
    ctx.put(&src, 0, &vals, ctx.my_pe());
    ctx.barrier_all();
    let peer = (ctx.my_pe() + 1) % ctx.n_pes();
    let mut dst = vec![0u64; NELEMS];
    ctx.iget(&mut dst, 1, &src, 2, 1, NELEMS, peer);
    let pbase = (peer as u64) << 32;
    for (i, &d) in dst.iter().enumerate() {
        assert_eq!(d, pbase + 2 + i as u64, "element {i} wrong");
    }
    ctx.barrier_all();
    ctx.stats().gets
}

fn assert_one_copy_per_get(trace: &[TraceEvent]) {
    let get_bytes = (NELEMS * std::mem::size_of::<u64>()) as u64;
    let copies: Vec<&TraceEvent> = trace
        .iter()
        .filter(|e| e.kind == TraceKind::Copy && e.bytes == get_bytes)
        .collect();
    assert_eq!(
        copies.len(),
        NPES,
        "expected exactly one {get_bytes}-byte Copy event per PE's single iget, got {copies:#?}"
    );
    for pe in 0..NPES {
        assert_eq!(
            copies.iter().filter(|e| e.pe == pe).count(),
            1,
            "PE {pe}: unit-stride iget must trace exactly one Copy"
        );
    }
}

#[test]
fn unit_stride_iget_is_one_copy_event_native() {
    let out = Launcher::new(&cfg(), NativeBackend).run(workload);
    for (pe, gets) in out.values.iter().enumerate() {
        assert_eq!(*gets, 1, "PE {pe}: iget must count as one logical get");
    }
    assert_one_copy_per_get(&out.trace.expect("trace enabled"));
}

#[test]
fn unit_stride_iget_is_one_copy_event_timed() {
    let out = tshmem::launch_timed(&cfg(), workload);
    for (pe, gets) in out.values.iter().enumerate() {
        assert_eq!(*gets, 1, "PE {pe}: iget must count as one logical get");
    }
    assert_one_copy_per_get(&out.trace.expect("trace enabled"));
}
