//! Distributed lock tests: multi-PE contention (mutual exclusion and
//! eventual acquisition) and misuse detection.

use tshmem::prelude::*;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes).with_partition_bytes(1 << 20)
}

#[test]
fn contended_lock_is_mutually_exclusive_and_fair_enough() {
    let npes = 6;
    let rounds = 25u64;
    let out = tshmem::launch(&cfg(npes), |ctx| {
        let me = ctx.my_pe();
        let lock = ctx.shmalloc::<i64>(1);
        // state[0] = counter, state[1] = in-critical-section marker.
        let state = ctx.shmalloc::<u64>(2);
        ctx.local_fill(&lock, 0i64);
        ctx.local_fill(&state, 0u64);
        ctx.barrier_all();
        for _ in 0..rounds {
            ctx.set_lock(&lock);
            // If any other PE were inside the critical section, the
            // marker would be nonzero.
            let marker = ctx.g(&state, 1, 0);
            assert_eq!(marker, 0, "PE {me} entered while PE {} held the lock", marker - 1);
            ctx.p(&state, 1, me as u64 + 1, 0);
            let c = ctx.g(&state, 0, 0);
            ctx.p(&state, 0, c + 1, 0);
            ctx.p(&state, 1, 0u64, 0);
            ctx.clear_lock(&lock);
        }
        ctx.barrier_all();
        // Every PE acquired the lock `rounds` times (eventual
        // acquisition under contention), so every increment survived.
        let total = ctx.g(&state, 0, 0);
        assert_eq!(total, rounds * npes as u64);
        total
    });
    assert_eq!(out.len(), npes);
}

#[test]
fn test_lock_backs_off_while_held() {
    tshmem::launch(&cfg(2), |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        let flag = ctx.shmalloc::<i64>(1);
        ctx.local_fill(&lock, 0i64);
        ctx.local_fill(&flag, 0i64);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            ctx.set_lock(&lock);
            ctx.p(&flag, 0, 1i64, 1);
            // Hold until PE 1 confirms its test_lock failed.
            ctx.wait_until(&flag, 0, Cmp::Ge, 2);
            ctx.clear_lock(&lock);
        } else {
            ctx.wait_until(&flag, 0, Cmp::Ge, 1);
            assert!(!ctx.test_lock(&lock), "test_lock must fail while PE 0 holds it");
            ctx.p(&flag, 0, 2i64, 0);
            // Once released, acquisition must succeed eventually.
            ctx.set_lock(&lock);
            ctx.clear_lock(&lock);
        }
        ctx.barrier_all();
    });
}

#[test]
#[should_panic(expected = "released a lock it does not hold")]
fn clearing_an_unheld_lock_panics() {
    tshmem::launch(&cfg(1), |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        ctx.local_fill(&lock, 0i64);
        ctx.clear_lock(&lock);
    });
}

#[test]
#[should_panic(expected = "released a lock it does not hold")]
fn clearing_a_peer_held_lock_panics() {
    tshmem::launch(&cfg(2), |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        let flag = ctx.shmalloc::<i64>(1);
        ctx.local_fill(&lock, 0i64);
        ctx.local_fill(&flag, 0i64);
        ctx.barrier_all();
        // PE 0 must be the violator: the launcher joins tiles in order,
        // so PE 0's panic is the one that propagates.
        if ctx.my_pe() == 1 {
            ctx.set_lock(&lock);
            ctx.p(&flag, 0, 1i64, 0);
            // Keep the job alive until PE 0's illegal clear panics.
            ctx.barrier_all();
        } else {
            ctx.wait_until(&flag, 0, Cmp::Ge, 1);
            // Not the owner: must panic, which aborts PE 1 out of its
            // barrier.
            ctx.clear_lock(&lock);
        }
    });
}
