//! Flat-vs-hierarchical equivalence for the two-level collectives:
//! exhaustive small set sizes (including every non-power-of-two shape a
//! cluster boundary can produce) plus spot checks past 64 PEs, where the
//! dispatcher auto-upgrades the flat defaults.

use tshmem::prelude::*;
use tshmem::runtime::{launch, launch_coop};

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes).with_partition_bytes(256 * 1024)
}

/// Sum-reduce on deterministic per-rank values, through the hierarchical
/// path at cluster width `cs`, checked against the closed form on every
/// member.
fn check_hier_reduce(npes: usize, cs: usize) {
    let out = launch(&cfg(npes), move |ctx| {
        let n = ctx.n_pes();
        let src = ctx.shmalloc::<i64>(4);
        let dst = ctx.shmalloc::<i64>(4);
        let me = ctx.my_pe() as i64;
        ctx.local_write(&src, 0, &[me + 1, 2 * me, me * me, 1]);
        let rank = ctx.world().rank_of(ctx.my_pe()).unwrap();
        ctx.reduce_hier_with(ReduceOp::Sum, &dst, &src, 4, ctx.world(), rank, cs);
        let got = ctx.local_read(&dst, 0, 4);
        let n = n as i64;
        let want = [
            n * (n + 1) / 2,
            n * (n - 1),
            (n - 1) * n * (2 * n - 1) / 6,
            n,
        ];
        assert_eq!(got.as_slice(), want, "npes={n} cs={cs}");
    });
    assert_eq!(out.len(), npes);
}

/// Broadcast from every possible root through the hierarchical path at
/// cluster width `cs`; the root's dest must stay untouched.
fn check_hier_broadcast(npes: usize, cs: usize) {
    launch(&cfg(npes), move |ctx| {
        let n = ctx.n_pes();
        let src = ctx.shmalloc::<u64>(3);
        let dst = ctx.shmalloc::<u64>(3);
        for root in 0..n {
            let tag = (root as u64 + 1) << 8;
            ctx.local_write(&src, 0, &[tag, tag + 1, tag + 2]);
            ctx.local_write(&dst, 0, &[u64::MAX; 3]);
            ctx.broadcast_hier_with(&dst, &src, 3, root, ctx.world(), cs);
            let got = ctx.local_read(&dst, 0, 3);
            if ctx.my_pe() == root {
                assert_eq!(got, vec![u64::MAX; 3], "root dest written (root={root} cs={cs})");
            } else {
                assert_eq!(got, vec![tag, tag + 1, tag + 2], "pe={} root={root} cs={cs}", ctx.my_pe());
            }
        }
    });
}

/// The hierarchical barrier must actually order phases: everyone writes
/// phase 1, barrier, everyone verifies all phase-1 writes, repeatedly.
fn check_hier_barrier(npes: usize, cs: usize) {
    launch(&cfg(npes), move |ctx| {
        let n = ctx.n_pes();
        let table = ctx.shmalloc::<u64>(n);
        let me = ctx.my_pe();
        for phase in 1..=3u64 {
            ctx.p(&table, me, phase * 100 + me as u64, (me + 1) % n);
            ctx.barrier_hier_with(ctx.world(), cs);
            for peer in 0..n {
                let v = ctx.g(&table, peer, (peer + 1) % n);
                assert_eq!(v, phase * 100 + peer as u64, "npes={n} cs={cs} phase={phase}");
            }
            ctx.barrier_hier_with(ctx.world(), cs);
        }
    });
}

#[test]
fn hier_reduce_exhaustive_small_sets() {
    // Every size through two full clusters plus a remainder, at cluster
    // widths that produce 1-member, short, and full tail clusters.
    for npes in 2..=13 {
        for cs in [1, 2, 3, 4, 5, 32] {
            check_hier_reduce(npes, cs);
        }
    }
}

#[test]
fn hier_broadcast_exhaustive_small_sets() {
    for npes in 2..=10 {
        for cs in [1, 2, 3, 4, 32] {
            check_hier_broadcast(npes, cs);
        }
    }
}

#[test]
fn hier_barrier_exhaustive_small_sets() {
    for npes in 2..=12 {
        for cs in [1, 2, 3, 5, 32] {
            check_hier_barrier(npes, cs);
        }
    }
}

#[test]
fn hier_collectives_on_strided_subset() {
    // Active set = the even PEs; the odd PEs stay bystanders.
    launch(&cfg(10), |ctx| {
        let set = ActiveSet::new(0, 1, 5);
        let src = ctx.shmalloc::<i64>(1);
        let dst = ctx.shmalloc::<i64>(1);
        let me = ctx.my_pe();
        ctx.local_write(&src, 0, &[me as i64]);
        ctx.local_write(&dst, 0, &[-1]);
        if let Some(rank) = set.rank_of(me) {
            ctx.reduce_hier_with(ReduceOp::Sum, &dst, &src, 1, set, rank, 2);
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], 2 + 4 + 6 + 8);
            ctx.broadcast_hier_with(&dst, &src, 1, 2, set, 2);
            if rank != 2 {
                assert_eq!(ctx.local_read(&dst, 0, 1)[0], 4, "broadcast root is PE 4");
            }
            ctx.barrier_hier_with(set, 2);
        }
        ctx.barrier_all();
        if set.rank_of(me).is_none() {
            assert_eq!(ctx.local_read(&dst, 0, 1)[0], -1, "bystander dest written");
        }
    });
}

/// Past 64 PEs the default algorithms silently upgrade to the
/// hierarchical variants; the results must match the closed forms, and
/// the whole thing must hold together on the oversubscribed coop engine.
#[test]
fn default_algos_auto_upgrade_past_64_pes() {
    let npes = 96;
    let cfg = RuntimeConfig::for_scale(npes).with_partition_bytes(96 * 1024);
    let out = launch_coop(&cfg, 4, |ctx| {
        let me = ctx.my_pe();
        let src = ctx.shmalloc::<i64>(1);
        let dst = ctx.shmalloc::<i64>(1);
        ctx.local_write(&src, 0, &[me as i64 + 1]);
        // Default Naive reduce → hierarchical at 96 members.
        ctx.sum_to_all(&dst, &src, 1, ctx.world());
        let sum = ctx.local_read(&dst, 0, 1)[0];
        // Default Pull broadcast → hierarchical at 96 members.
        let b_src = ctx.shmalloc::<i64>(1);
        let b_dst = ctx.shmalloc::<i64>(1);
        ctx.local_write(&b_src, 0, &[sum * 2]);
        ctx.local_write(&b_dst, 0, &[0]);
        ctx.broadcast(&b_dst, &b_src, 1, 7, ctx.world());
        // Default Ring barrier → hierarchical at 96 members (already
        // exercised inside both collectives above).
        ctx.barrier_all();
        let bval = if me == 7 { sum * 2 } else { ctx.local_read(&b_dst, 0, 1)[0] };
        (sum, bval)
    });
    let want_sum = (npes * (npes + 1) / 2) as i64;
    for (pe, (sum, bval)) in out.iter().enumerate() {
        assert_eq!(*sum, want_sum, "PE {pe} reduce");
        assert_eq!(*bval, want_sum * 2, "PE {pe} broadcast");
    }
}

/// Large-set spot check on the explicit hierarchical barrier (768-style
/// non-power-of-two leader counts scaled down to what a test can run:
/// 96 PEs / 32 → 3 leaders, the same odd-leader shape).
#[test]
fn hier_barrier_at_96_pes_on_coop() {
    let cfg = RuntimeConfig::for_scale(96).with_partition_bytes(64 * 1024);
    let out = launch_coop(&cfg, 4, |ctx| {
        let n = ctx.n_pes();
        let me = ctx.my_pe();
        let table = ctx.shmalloc::<u64>(n);
        ctx.p(&table, me, me as u64 + 1, (me + 1) % n);
        ctx.barrier_hier_explicit(ctx.world());
        ctx.g(&table, (me + n - 1) % n, me)
    });
    for (pe, v) in out.iter().enumerate() {
        let writer = (pe + 95) % 96;
        assert_eq!(*v, writer as u64 + 1, "PE {pe}");
    }
}
