//! Recursive-doubling reduce on non-power-of-two sets with the temp
//! buffer sized so every fold crosses multiple chunk handshakes.
//!
//! With `temp_bytes = 512` and 6 PEs, each sender's per-PE temp slot is
//! `(512 / 6) & !7 = 80` bytes — 10 u64s — so a 64-element reduce takes
//! 7 data/ack round trips per fold. A set size of 6 exercises all three
//! legs of the non-power-of-two path: excess ranks folding into the
//! power-of-two core, the pairwise exchange rounds, and the result
//! push-back to the excess ranks.

use tshmem::prelude::*;

const NREDUCE: usize = 64;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_temp_bytes(512)
        .with_algos(Algorithms { reduce: ReduceAlgo::RecursiveDoubling, ..Default::default() })
}

fn src_val(pe: usize, i: usize) -> u64 {
    (pe as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32)
}

#[test]
fn recursive_doubling_world_of_six_multi_chunk() {
    let npes = 6;
    tshmem::launch(&cfg(npes), |ctx| {
        let me = ctx.my_pe();
        let src = ctx.shmalloc::<u64>(NREDUCE);
        let dst = ctx.shmalloc::<u64>(NREDUCE);
        let vals: Vec<u64> = (0..NREDUCE).map(|i| src_val(me, i)).collect();
        ctx.local_write(&src, 0, &vals);
        ctx.local_fill(&dst, 0u64);
        ctx.barrier_all();

        ctx.reduce(ReduceOp::Sum, &dst, &src, NREDUCE, ctx.world());
        let got = ctx.local_read(&dst, 0, NREDUCE);
        for (i, g) in got.iter().enumerate() {
            let want = (0..npes).fold(0u64, |a, pe| a.wrapping_add(src_val(pe, i)));
            assert_eq!(*g, want, "PE {me} sum elem {i}");
        }
        ctx.barrier_all();

        // Second invocation on the same buffers with a different op: the
        // per-partner chunk sequence numbers must carry across calls.
        ctx.reduce(ReduceOp::Max, &dst, &src, NREDUCE, ctx.world());
        let got = ctx.local_read(&dst, 0, NREDUCE);
        for (i, g) in got.iter().enumerate() {
            let want = (0..npes).map(|pe| src_val(pe, i)).max().unwrap();
            assert_eq!(*g, want, "PE {me} max elem {i}");
        }
        ctx.barrier_all();
    });
}

#[test]
fn recursive_doubling_strided_subset_of_five_multi_chunk() {
    // 8-PE job, but only PEs 1..=5 reduce (size 5, non-power-of-two,
    // stride 1 offset start). Per-slot temp is (512 / 8) & !7 = 64 B =
    // 8 u64s, so 64 elements need 8 chunk handshakes per fold. The
    // non-members run concurrent barriers to keep the demux queues busy.
    let npes = 8;
    tshmem::launch(&cfg(npes), |ctx| {
        let me = ctx.my_pe();
        let set = ActiveSet::new(1, 0, 5); // PEs 1,2,3,4,5
        let src = ctx.shmalloc::<u64>(NREDUCE);
        let dst = ctx.shmalloc::<u64>(NREDUCE);
        let vals: Vec<u64> = (0..NREDUCE).map(|i| src_val(me, i)).collect();
        ctx.local_write(&src, 0, &vals);
        ctx.local_fill(&dst, 0u64);
        ctx.barrier_all();

        if let Some(_rank) = set.rank_of(me) {
            ctx.reduce(ReduceOp::Xor, &dst, &src, NREDUCE, set);
            let got = ctx.local_read(&dst, 0, NREDUCE);
            for (i, g) in got.iter().enumerate() {
                let want = set.iter().fold(0u64, |a, pe| a ^ src_val(pe, i));
                assert_eq!(*g, want, "PE {me} xor elem {i}");
            }
        } else {
            // Untouched on non-members.
            assert_eq!(ctx.local_read(&dst, 0, NREDUCE), vec![0u64; NREDUCE]);
        }
        ctx.barrier_all();
    });
}
