//! A panicking PE must abort the whole job (with the original panic
//! surfacing) rather than leaving peers blocked in protocol waits.

use tshmem::prelude::*;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes).with_partition_bytes(1 << 20)
}

#[test]
#[should_panic]
fn peer_panic_aborts_pes_blocked_in_barrier() {
    tshmem::launch(&cfg(4), |ctx| {
        if ctx.my_pe() == 2 {
            panic!("PE 2 exploded mid-protocol");
        }
        // Everyone else blocks in a barrier PE 2 will never join; the
        // abort flag must get them out.
        ctx.barrier_all();
    });
}

#[test]
#[should_panic]
fn peer_panic_aborts_pes_blocked_in_wait() {
    tshmem::launch(&cfg(2), |ctx| {
        let flag = ctx.shmalloc::<i64>(1);
        ctx.local_write(&flag, 0, &[0i64]);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            panic!("PE 0 exploded before signaling");
        }
        // PE 1 waits for a signal that will never come.
        ctx.wait(&flag, 0, 0i64);
    });
}

#[test]
fn jobs_after_an_aborted_job_still_work() {
    let r = std::panic::catch_unwind(|| {
        tshmem::launch(&cfg(3), |ctx| {
            if ctx.my_pe() == 1 {
                panic!("boom");
            }
            ctx.barrier_all();
        });
    });
    assert!(r.is_err(), "the aborted job must report the panic");
    // A fresh job in the same process is unaffected.
    let out = tshmem::launch(&cfg(3), |ctx| {
        let v = ctx.shmalloc::<u32>(1);
        ctx.p(&v, 0, 5u32, (ctx.my_pe() + 1) % 3);
        ctx.barrier_all();
        ctx.g(&v, 0, ctx.my_pe())
    });
    assert_eq!(out, vec![5, 5, 5]);
}
