//! Native-engine RMA tests: every put/get form and all four address
//! classes of paper Section IV-B.

use tshmem::prelude::*;
use tshmem::runtime::launch;

fn cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 18)
        .with_temp_bytes(1 << 12)
}

#[test]
fn ring_put_delivers_to_neighbor() {
    let n = 4;
    let out = launch(&cfg(n), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<u64>(8);
        let next = (me + 1) % ctx.n_pes();
        let payload: Vec<u64> = (0..8).map(|i| (me * 100 + i) as u64).collect();
        ctx.put(&buf, 0, &payload, next);
        ctx.barrier_all();
        let prev = (me + ctx.n_pes() - 1) % ctx.n_pes();
        let got = ctx.local_read(&buf, 0, 8);
        assert_eq!(got[0], (prev * 100) as u64);
        assert_eq!(got[7], (prev * 100 + 7) as u64);
        got[0]
    });
    assert_eq!(out.len(), n);
}

#[test]
fn get_reads_remote_partition() {
    launch(&cfg(3), |ctx| {
        let me = ctx.my_pe();
        let buf = ctx.shmalloc::<f64>(16);
        let vals: Vec<f64> = (0..16).map(|i| me as f64 + i as f64 * 0.5).collect();
        ctx.local_write(&buf, 0, &vals);
        ctx.barrier_all();
        for pe in 0..ctx.n_pes() {
            let mut got = vec![0.0f64; 16];
            ctx.get(&mut got, &buf, 0, pe);
            assert_eq!(got[0], pe as f64);
            assert_eq!(got[2], pe as f64 + 1.0);
        }
    });
}

#[test]
fn elemental_p_and_g() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<i32>(4);
        if ctx.my_pe() == 0 {
            ctx.p(&v, 2, -42, 1);
        }
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            assert_eq!(ctx.local_read(&v, 2, 1)[0], -42);
        }
        // g from the other side.
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            assert_eq!(ctx.g(&v, 2, 1), -42);
        }
    });
}

#[test]
fn strided_iput_iget() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u32>(16);
        ctx.local_fill(&v, 0);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            // Write 1,2,3,4 to indices 0,3,6,9 on PE 1.
            ctx.iput(&v, 0, 3, &[1, 2, 3, 4], 1, 4, 1);
            ctx.quiet();
        }
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            let all = ctx.local_read(&v, 0, 16);
            assert_eq!(all[0], 1);
            assert_eq!(all[3], 2);
            assert_eq!(all[6], 3);
            assert_eq!(all[9], 4);
            assert_eq!(all[1], 0);
        }
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            let mut out = [0u32; 4];
            ctx.iget(&mut out, 1, &v, 0, 3, 4, 1);
            assert_eq!(out, [1, 2, 3, 4]);
        }
    });
}

#[test]
fn all_four_address_classes_roundtrip() {
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let n = 256usize;
        let dynv = ctx.shmalloc::<u64>(n);
        let statv = ctx.static_sym::<u64>(n);
        // Seed both with per-PE patterns.
        let pat: Vec<u64> = (0..n).map(|i| (me as u64) << 32 | i as u64).collect();
        ctx.local_write(&dynv, 0, &pat);
        ctx.local_write(&statv, 0, &pat);
        ctx.barrier_all();

        let other = 1 - me;
        if me == 0 {
            // dynamic-dynamic put: our dyn -> their dyn.
            let scratch = ctx.shmalloc::<u64>(n);
            ctx.put_sym(&scratch, 0, &dynv, 0, n, other);
            // dynamic-static put: our static -> their dyn... target dyn, source static.
            let scratch2 = ctx.shmalloc::<u64>(n);
            ctx.put_sym(&scratch2, 0, &statv, 0, n, other);
            // static-dynamic put: our dyn -> their STATIC (redirected).
            let stat2 = ctx.static_sym::<u64>(n);
            ctx.put_sym(&stat2, 0, &dynv, 0, n, other);
            // static-static put (temp-assisted).
            let stat3 = ctx.static_sym::<u64>(n);
            ctx.put_sym(&stat3, 0, &statv, 0, n, other);
            ctx.quiet();
            ctx.barrier_all();
            ctx.barrier_all(); // let PE 1 verify
        } else {
            let scratch = ctx.shmalloc::<u64>(n);
            let scratch2 = ctx.shmalloc::<u64>(n);
            let stat2 = ctx.static_sym::<u64>(n);
            let stat3 = ctx.static_sym::<u64>(n);
            ctx.barrier_all();
            let expect: Vec<u64> = (0..n).map(|i| i as u64).collect(); // PE 0's pattern
            assert_eq!(ctx.local_read(&scratch, 0, n), expect, "dd put");
            assert_eq!(ctx.local_read(&scratch2, 0, n), expect, "ds put");
            assert_eq!(ctx.local_read(&stat2, 0, n), expect, "sd put (redirected)");
            assert_eq!(ctx.local_read(&stat3, 0, n), expect, "ss put (temp)");
            ctx.barrier_all();
        }

        // And the four get classes, pulled by PE 1 from PE 0.
        ctx.barrier_all();
        if me == 1 {
            let tgt_dyn = ctx.shmalloc::<u64>(n);
            let tgt_stat = ctx.static_sym::<u64>(n);
            let expect: Vec<u64> = (0..n).map(|i| i as u64).collect();
            // dd get
            ctx.get_sym(&tgt_dyn, 0, &dynv, 0, n, 0);
            assert_eq!(ctx.local_read(&tgt_dyn, 0, n), expect, "dd get");
            // static target, dynamic source: direct
            ctx.get_sym(&tgt_stat, 0, &dynv, 0, n, 0);
            assert_eq!(ctx.local_read(&tgt_stat, 0, n), expect, "sd get");
            // dynamic target, static source: redirected
            ctx.local_fill(&tgt_dyn, 0);
            ctx.get_sym(&tgt_dyn, 0, &statv, 0, n, 0);
            assert_eq!(ctx.local_read(&tgt_dyn, 0, n), expect, "ds get (redirected)");
            // static-static get (temp-assisted)
            ctx.local_fill(&tgt_stat, 0);
            ctx.get_sym(&tgt_stat, 0, &statv, 0, n, 0);
            assert_eq!(ctx.local_read(&tgt_stat, 0, n), expect, "ss get (temp)");
            assert!(ctx.stats().redirected >= 2, "redirections must have happened");
        } else {
            let _ = ctx.shmalloc::<u64>(n);
            let _ = ctx.static_sym::<u64>(n);
        }
        ctx.barrier_all();
    });
}

#[test]
fn static_transfers_larger_than_temp_chunk() {
    // Temp is 4 kB in this config; move 40 kB through it.
    launch(&cfg(2), |ctx| {
        let n = 5 * 1024usize; // u64s -> 40 kB
        let statv = ctx.static_sym::<u64>(n);
        let me = ctx.my_pe();
        let pat: Vec<u64> = (0..n).map(|i| (me as u64 + 1) * 1_000_000 + i as u64).collect();
        ctx.local_write(&statv, 0, &pat);
        ctx.barrier_all();
        if me == 0 {
            let mut got = vec![0u64; n];
            ctx.get(&mut got, &statv, 0, 1);
            assert_eq!(got[0], 2_000_000);
            assert_eq!(got[n - 1], 2_000_000 + n as u64 - 1);
        }
        ctx.barrier_all();
    });
}

#[test]
fn put_to_self_and_get_from_self() {
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let v = ctx.shmalloc::<i64>(4);
        let s = ctx.static_sym::<i64>(4);
        ctx.put(&v, 0, &[9, 8, 7, 6], me);
        ctx.put(&s, 0, &[1, 2, 3, 4], me);
        assert_eq!(ctx.g(&v, 1, me), 8);
        assert_eq!(ctx.g(&s, 3, me), 4);
        ctx.barrier_all();
    });
}

#[test]
fn shmem_ptr_classification() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u32>(1);
        let s = ctx.static_sym::<u32>(1);
        assert!(ctx.ptr(&v, 0).is_some());
        assert!(ctx.ptr(&v, 1).is_some());
        assert!(ctx.ptr(&s, ctx.my_pe()).is_some());
        assert!(ctx.ptr(&s, 1 - ctx.my_pe()).is_none());
        ctx.barrier_all();
    });
}

#[test]
fn realloc_and_free_cycle() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u32>(8);
        ctx.local_write(&v, 0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let v2 = ctx.shrealloc(v, 1024);
        assert_eq!(ctx.local_read(&v2, 0, 4), vec![1, 2, 3, 4]);
        ctx.shfree(v2);
        // The heap is whole again: a big allocation succeeds.
        let big = ctx.try_shmalloc::<u8>(900 * 1024).expect("heap should be coalesced");
        ctx.shfree(big);
    });
}

#[test]
fn stats_count_operations() {
    launch(&cfg(2), |ctx| {
        let v = ctx.shmalloc::<u64>(4);
        ctx.p(&v, 0, 1, 1 - ctx.my_pe());
        let _ = ctx.g(&v, 0, 1 - ctx.my_pe());
        ctx.barrier_all();
        let st = ctx.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 1);
        assert_eq!(st.put_bytes, 8);
        assert!(st.barriers >= 2); // shmalloc + explicit
    });
}

#[test]
fn strided_ops_count_once_and_share_nelems_convention() {
    // Pins the iput/iget contract: `nelems` is the number of *logical*
    // elements transferred (shared by both sides; extra source capacity
    // beyond `(nelems-1)*stride` is ignored), and each strided call is
    // exactly one logical put/get in the stats regardless of element
    // count or stride.
    launch(&cfg(2), |ctx| {
        let me = ctx.my_pe();
        let v = ctx.shmalloc::<u64>(32);
        ctx.local_fill(&v, 0u64);
        ctx.barrier_all();
        if me == 0 {
            let before = ctx.stats();
            // Source has 16 elements but nelems=5 with sst=2 only reads
            // indices 0,2,4,6,8 of it.
            let src: Vec<u64> = (0..16).map(|i| 100 + i as u64).collect();
            ctx.iput(&v, 1, 3, &src, 2, 5, 1);
            ctx.quiet();
            let after = ctx.stats();
            assert_eq!(after.puts - before.puts, 1, "one logical put");
            assert_eq!(after.put_bytes - before.put_bytes, 5 * 8, "nelems bytes");
        }
        ctx.barrier_all();
        if me == 1 {
            let all = ctx.local_read(&v, 0, 32);
            for (k, want) in [(1, 100), (4, 102), (7, 104), (10, 106), (13, 108)] {
                assert_eq!(all[k], want, "target index {k}");
            }
            assert_eq!(all[0], 0);
            assert_eq!(all[2], 0);
            assert_eq!(all[16], 0, "nothing past nelems elements");
        }
        ctx.barrier_all();
        if me == 0 {
            let before = ctx.stats();
            // Destination has room for 16, but nelems=5 with
            // dst_stride=2 only writes indices 0,2,4,6,8.
            let mut out = [u64::MAX; 16];
            ctx.iget(&mut out, 2, &v, 1, 3, 5, 1);
            let after = ctx.stats();
            assert_eq!(after.gets - before.gets, 1, "one logical get");
            assert_eq!(after.get_bytes - before.get_bytes, 5 * 8);
            assert_eq!(out[0], 100);
            assert_eq!(out[8], 108);
            assert_eq!(out[1], u64::MAX, "stride gaps untouched");
            assert_eq!(out[10], u64::MAX, "nothing past nelems elements");
        }
        ctx.barrier_all();
    });
}

#[test]
fn strided_static_transfers_batch_through_temp() {
    // The acceptance check for the iput batching fix: a strided put to a
    // remote *static* target must stage whole temp-sized batches per
    // service interrupt, not one redirect per element. With a 512-byte
    // temp, a 256-element u64 transfer fits 64 elements per batch, so
    // exactly 4 redirects (it was 256 before the fix).
    let small_temp = RuntimeConfig::new(2)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 18)
        .with_temp_bytes(512);
    launch(&small_temp, |ctx| {
        let me = ctx.my_pe();
        let n = 256usize;
        let statv = ctx.static_sym::<u64>(2 * n);
        ctx.local_fill(&statv, 0u64);
        ctx.barrier_all();
        if me == 0 {
            let src: Vec<u64> = (0..n as u64).map(|i| 0xABC0_0000 + i).collect();
            let before = ctx.stats();
            ctx.iput(&statv, 0, 2, &src, 1, n, 1);
            ctx.quiet();
            let after = ctx.stats();
            assert_eq!(after.puts - before.puts, 1);
            assert_eq!(after.redirected - before.redirected, 4, "4 temp batches, not 256");
        }
        ctx.barrier_all();
        if me == 1 {
            let all = ctx.local_read(&statv, 0, 2 * n);
            for i in 0..n {
                assert_eq!(all[2 * i], 0xABC0_0000 + i as u64, "element {i}");
                assert_eq!(all[2 * i + 1], 0, "stride gap {i}");
            }
        }
        ctx.barrier_all();
        if me == 0 {
            let before = ctx.stats();
            let mut out = vec![0u64; n];
            ctx.iget(&mut out, 1, &statv, 0, 2, n, 1);
            let after = ctx.stats();
            assert_eq!(after.gets - before.gets, 1);
            assert_eq!(after.redirected - before.redirected, 4, "iget batches too");
            assert_eq!(out[0], 0xABC0_0000);
            assert_eq!(out[n - 1], 0xABC0_0000 + n as u64 - 1);
        }
        ctx.barrier_all();
    });
}

#[test]
fn single_pe_job_works() {
    let out = launch(&cfg(1), |ctx| {
        let v = ctx.shmalloc::<i32>(4);
        ctx.put(&v, 0, &[5, 6, 7, 8], 0);
        ctx.barrier_all();
        ctx.sum_to_all(&v, &v, 4, ctx.world());
        ctx.g(&v, 3, 0)
    });
    assert_eq!(out, vec![8]);
}
