//! Deterministic concurrency stress harness for the TSHMEM native
//! engine.
//!
//! A seeded generator ([`program::gen_program`]) emits random SHMEM
//! programs — puts/gets across all four Figure 7 address-class cases,
//! strided ops, atomics, locks, every barrier/broadcast/reduce variant,
//! and collect/fcollect on random (often overlapping) active sets. The
//! runner ([`run::run_on_ctx`]) executes them on 2–8 PEs at any UDN
//! queue depth and checks the final heap/private state against a
//! sequentially-computed oracle ([`oracle::oracle`]).
//!
//! [`run::run_watched`] adds a wall-clock progress watchdog: when the
//! fabric op counter stops moving, it dumps a per-PE diagnosis (which
//! queue each PE is blocked on, queue occupancy, protocol stash
//! contents, last trace event) plus the reproducing seed, then aborts
//! the job.
//!
//! Failing programs shrink through `substrate::proptest_mini`
//! ([`program::ProgramStrategy`]); `cargo run -p stress -- --seed N`
//! replays them (see `src/main.rs`).

pub mod oracle;
pub mod program;
pub mod run;
pub mod serve;

pub use oracle::{oracle, Model};
pub use program::{
    gen_program, gen_program_v, AuxOp, Draw, Program, ProgramStrategy, RngDraw, GEN_LATEST,
    GEN_V1, GEN_V2, GEN_V3,
};
pub use run::{
    build_cfg, classify_stall, resolve_coop_workers, run_coop, run_multichip, run_multichip_mode,
    run_on_ctx, run_plain, run_timed, run_timed_mode, run_watched, scaled_stall, watch_closure,
    watch_closure_coop, Outcome,
};
pub use serve::{serve, Sched, ServeOpts, ServeSummary};
