//! Random SHMEM program model and its seeded generator.
//!
//! A [`Program`] is a fully-determined description of a parallel run:
//! every PE's operation list, every collective's active set and payload,
//! the algorithm variants to configure, and the temp-buffer size that
//! controls static-segment chunking. Determinism comes from an ownership
//! discipline — during an [`Step::Rma`] phase, PE `p` only touches slots
//! inside its own *stripe* of the shared arrays (on any PE's copy), so
//! any thread interleaving yields the same final state, and a sequential
//! oracle ([`crate::oracle`]) can predict it exactly. Counters are the
//! one exception: they are updated with commutative atomics only, so
//! their *final* value is deterministic even though intermediate values
//! are not.
//!
//! Generation draws through the [`Draw`] trait so the same byte-for-byte
//! program can come from either a [`substrate::proptest_mini::Source`]
//! (inside `pt::check`, which shrinks failures) or a bare
//! [`substrate::rng::KeyedRng`] (the `cargo run -p stress -- --seed N`
//! replay binary). Both use the same `next_u64() % n` reduction on the
//! same SplitMix64 stream, so `(seed, case)` reported by a failing
//! property identifies the program exactly.

use substrate::proptest_mini as pt;
use substrate::rng::KeyedRng;

/// Generator vocabulary versions. The draw stream behind a version is
/// **frozen**: seeds pinned in tests (`--gen 1` canaries) must keep
/// generating byte-identical programs forever, so new op kinds extend
/// the vocabulary only under a new version tag.
pub const GEN_V1: u32 = 1;
/// V2 adds `shmem_ptr` direct-pointer traffic ([`RmaOp::PtrPut`],
/// [`RmaOp::PtrGet`]) and the `wait_until`/`cswap` step mixes
/// ([`Step::SignalRing`], [`Step::CswapRing`]).
pub const GEN_V2: u32 = 2;
/// V3 adds symmetric-heap churn under concurrent RMA
/// ([`Step::HeapChurn`]): collective `shmalloc`/`shrealloc`/`shfree`
/// cycles interleaved with striped put/get traffic on the churned
/// array.
pub const GEN_V3: u32 = 3;
/// V4 adds the OpenSHMEM 1.3/1.4 surface: non-blocking trains with
/// interleaved fence/quiet ([`Step::NbiTrain`]), `put_signal` chains
/// waited at non-zero signal indices ([`Step::SignalChain`]), and
/// team-scoped collectives ([`Step::TeamColl`]).
pub const GEN_V4: u32 = 4;
pub const GEN_LATEST: u32 = GEN_V4;

/// Heap data slots owned by each PE (its stripe of the `data` array).
pub const SLOTS_PER_PE: usize = 16;
/// Static-segment slots owned by each PE (stripe of the `statv` array).
pub const STAT_SLOTS_PER_PE: usize = 8;
/// Commutative atomic counters (all live on PE 0's copy).
pub const NCTRS: usize = 4;
/// Elements each collective member contributes.
pub const COLL_L: usize = 8;
/// Signal words in the shared `sigs` array ([`Step::SignalChain`]
/// draws a non-zero index, pinning the indexed-`wait_until` fix).
pub const NSIG: usize = 4;
/// Payload words each `put_signal` chain hop delivers.
pub const CHAIN_W: usize = 2;

/// One randomized SHMEM run, replayable from its generation seed.
#[derive(Clone, Debug)]
pub struct Program {
    pub npes: usize,
    /// Temp-buffer bytes: small values force multi-chunk static
    /// redirections (the Figure 7 temp-assisted path).
    pub temp_bytes: usize,
    /// `(barrier, broadcast, reduce)` algorithm selectors, in the order
    /// the variants are declared in `tshmem::ctx`.
    pub algos: (u8, u8, u8),
    pub steps: Vec<Step>,
}

#[derive(Clone, Debug)]
pub enum Step {
    /// Concurrent per-PE RMA/atomic traffic, closed by a barrier.
    /// `barrier`: 0 = `barrier_all` (configured algo), 1 = ring,
    /// 2 = root-broadcast, 3 = dissemination (explicit variants).
    Rma { ops: Vec<Vec<RmaOp>>, barrier: u8 },
    /// A collective over `set = (start, log2_stride, size)`. `idx` is
    /// this step's slot region in the shared `coll` array; `vals[rank]`
    /// is member `rank`'s contribution (always `COLL_L` words).
    Coll { kind: CollKind, set: (usize, u32, usize), idx: usize, vals: Vec<Vec<u64>> },
    /// Every PE loops `rounds` times through a `set_lock`-protected
    /// critical section incrementing a shared counter.
    Lock { rounds: u32 },
    /// A token ring over `p()` + `wait_until(Ge)` on the shared `sig`
    /// cell: each round, PE 0 signals PE 1, each PE forwards on arrival,
    /// and PE 0 waits for the wrap-around. Exercises flag waits (spin
    /// accounting) and put→flag ordering. Final `sig` on every copy =
    /// cumulative rounds. (V2+)
    SignalRing { rounds: u32 },
    /// Rank-ordered claims on the single shared `ring` cell via failing
    /// `cswap` retries: in round `r`, PE `me` spins until it can swap
    /// token `base + r*npes + me` for its successor. Exercises the
    /// useful-vs-spin split under heavy cswap contention. Final cell =
    /// cumulative `rounds * npes`. (V2+)
    CswapRing { rounds: u32 },
    /// Symmetric-heap churn under concurrent RMA (V3+). All PEs
    /// collectively `shmalloc` a scratch array of `npes * slots` words
    /// (zeroed), run a striped round of [`AuxOp`] traffic over it, then
    /// churn the allocation — `refresh = true` frees it and allocates a
    /// same-sized replacement; `refresh = false` `shrealloc`s it one
    /// slot-per-PE larger (the heap block may move, exercising the
    /// preserve-copy + region-rehoming path; the grown tail is zeroed
    /// explicitly because `shrealloc` preserves only the old prefix).
    /// A second round of traffic follows, every PE dumps its full local
    /// copy into the recorded gets, and the array is `shfree`d. Closed
    /// by barrier variant `barrier` (same encoding as [`Step::Rma`]).
    HeapChurn {
        slots: usize,
        refresh: bool,
        round1: Vec<Vec<AuxOp>>,
        round2: Vec<Vec<AuxOp>>,
        barrier: u8,
    },
    /// Non-blocking RMA trains (V4+): per-PE [`NbiOp`] lists mixing
    /// `put_nbi`/`get_nbi` to heap and static stripes with interleaved
    /// `fence` (which must *not* complete the train) and mid-train
    /// `quiet`. The step closes with a `quiet` and barrier variant
    /// `barrier` (same encoding as [`Step::Rma`]), so no nbi op ever
    /// crosses a step boundary and the eager/lazy completion modes are
    /// observationally identical.
    NbiTrain { ops: Vec<Vec<NbiOp>>, barrier: u8 },
    /// `put_signal` token ring (V4+): each hop delivers a [`CHAIN_W`]
    /// -word payload into the sender's `chaind` stripe on the next PE,
    /// then updates `sigs[idx]` there (`add = false` sets it to the
    /// round target, `add = true` increments) — and the receiver waits
    /// with an *indexed* `wait_until` on `sigs[idx]` before reading the
    /// payload, so signal ordering and the non-zero-index wait path are
    /// both load-bearing. `idx` is always non-zero.
    SignalChain { rounds: u32, idx: usize, add: bool },
    /// A team-scoped collective (V4+): the world team is
    /// `split_strided(start_rank, log2_stride, size)` and the
    /// collective runs through the [`tshmem::Team`] methods. Non-member
    /// PEs get `None` from the split and skip. Region bookkeeping in
    /// the shared `coll` array matches [`Step::Coll`].
    TeamColl { kind: TeamKind, split: (usize, u32, usize), idx: usize, vals: Vec<Vec<u64>> },
}

/// Collective kind of a [`Step::TeamColl`].
#[derive(Clone, Debug)]
pub enum TeamKind {
    /// Team broadcast; `root_rank` is a team rank.
    Bcast { root_rank: usize },
    /// Same `op` encoding as [`CollKind::Reduce`].
    Reduce { op: u8 },
    Fcollect,
    Collect,
    /// Block exchange of `nelems` elements per member pair
    /// (`size * nelems <= COLL_L`, so the source region always fits).
    Alltoall { nelems: usize },
}

#[derive(Clone, Debug)]
pub enum CollKind {
    Bcast { root_rank: usize },
    /// `op`: 0 Sum, 1 Min, 2 Max, 3 Or, 4 Xor (wrapping/bitwise on u64).
    Reduce { op: u8 },
    Fcollect,
    /// Variable contributions: rank `r` sends `1 + (r + idx) % COLL_L`
    /// elements.
    Collect,
}

/// One operation issued by PE `me`. All slot fields are *stripe-local*
/// (the executor adds `me * SLOTS_PER_PE` / `me * STAT_SLOTS_PER_PE`),
/// which is what keeps concurrent phases race-free.
#[derive(Clone, Debug)]
pub enum RmaOp {
    /// `p()` one value into `data[stripe(me) + slot]` on PE `to`.
    PutHeapElem { to: usize, slot: usize, val: u64 },
    /// Contiguous `put()` into the heap stripe on PE `to`.
    PutHeapBulk { to: usize, slot: usize, vals: Vec<u64> },
    /// Strided `iput()` (target stride `tst`) into the heap stripe.
    IputHeap { to: usize, slot: usize, tst: usize, vals: Vec<u64> },
    /// `g()` one value back from PE `from`; result is recorded and
    /// checked against the oracle.
    GetHeapElem { from: usize, slot: usize },
    /// Contiguous `get()` of `n` values from PE `from` (recorded).
    GetHeapBulk { from: usize, slot: usize, n: usize },
    /// Contiguous `put()` into the *static* stripe on PE `to`
    /// (temp-assisted redirection when `to != me`).
    PutStatic { to: usize, slot: usize, vals: Vec<u64> },
    /// Strided `iput()` into the static stripe (strided redirection).
    IputStatic { to: usize, slot: usize, tst: usize, vals: Vec<u64> },
    /// Contiguous `get()` from the static stripe on PE `from` (recorded).
    GetStatic { from: usize, slot: usize, n: usize },
    /// Strided `iget()` from the static stripe on PE `from` (recorded).
    IgetStatic { from: usize, slot: usize, sst: usize, n: usize },
    /// `put_sym` our own heap-stripe data into the static stripe on PE
    /// `to` — the Figure 7 static-target/dynamic-source case.
    PutSymDynToStatic { to: usize, slot: usize, dslot: usize, n: usize },
    /// `get_sym` the static stripe on PE `from` into our own heap-stripe
    /// copy — the dynamic-target/static-source (redirected) case.
    GetSymStaticToDyn { from: usize, slot: usize, dslot: usize, n: usize },
    /// Commutative atomic add to counter `ctr` on PE 0.
    CtrAdd { ctr: usize, amount: u64 },
    /// `shmem_ptr` direct store: write `data[stripe(me) + slot]` on PE
    /// `to` through the raw pointer. Race-free by the stripe discipline
    /// (only PE `me` ever touches its stripe on any copy). (V2+)
    PtrPut { to: usize, slot: usize, val: u64 },
    /// `shmem_ptr` direct load from `data[stripe(me) + slot]` on PE
    /// `from` (recorded and checked against the oracle). (V2+)
    PtrGet { from: usize, slot: usize },
}

/// One operation on the churned scratch array of a [`Step::HeapChurn`]
/// phase. Slot fields are stripe-local exactly like [`RmaOp`]: PE `me`
/// only touches `aux[me * slots + slot]` on any PE's copy. (V3+)
#[derive(Clone, Debug)]
pub enum AuxOp {
    /// `p()` one value into our stripe on PE `to`'s copy.
    Put { to: usize, slot: usize, val: u64 },
    /// Contiguous `put()` into our stripe on PE `to`'s copy.
    PutBulk { to: usize, slot: usize, vals: Vec<u64> },
    /// `g()` one value back from our stripe on PE `from`'s copy
    /// (recorded and checked against the oracle).
    Get { from: usize, slot: usize },
}

/// One operation in a [`Step::NbiTrain`]. Slot fields are stripe-local
/// exactly like [`RmaOp`]. `Fence` orders but does *not* complete the
/// preceding puts; `Quiet` completes everything issued so far. The
/// `get_nbi` ops are recorded like their blocking cousins — safe to
/// check against the oracle because `get_nbi` flushes pending puts to
/// its source PE first and the stripe discipline means nobody else
/// writes the slots we read. (V4+)
#[derive(Clone, Debug)]
pub enum NbiOp {
    /// `put_nbi` into our heap stripe on PE `to`'s copy.
    PutNbiHeap { to: usize, slot: usize, vals: Vec<u64> },
    /// `put_nbi` into our *static* stripe on PE `to` (temp-chunked
    /// redirection when remote, so in-flight chunks ride the nbi temp
    /// bump allocator).
    PutNbiStatic { to: usize, slot: usize, vals: Vec<u64> },
    /// `get_nbi` of `n` heap words from PE `from` (recorded).
    GetNbiHeap { from: usize, slot: usize, n: usize },
    /// `get_nbi` of `n` static words from PE `from` (recorded).
    GetNbiStatic { from: usize, slot: usize, n: usize },
    /// `shmem_fence`: per-destination ordering, leaves ops pending.
    Fence,
    /// `shmem_quiet`: completes the train issued so far.
    Quiet,
}

/// The `CHAIN_W`-word payload PE `sender` delivers in round `round` of a
/// [`Step::SignalChain`] with chain base `base`. Shared by the executor
/// (what gets put) and the oracle (what must arrive): deterministic,
/// collision-free across (base, round, sender).
pub fn chain_payload(base: u64, round: u32, sender: usize) -> [u64; CHAIN_W] {
    let mix = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round as u64)
        .wrapping_add((sender as u64) << 32);
    [mix, mix ^ 0xD1B5_4A32_D192_ED03]
}

/// A bounded-draw source of randomness. `below(n)` must reduce the
/// underlying `u64` stream with `% n` so that property-harness sources
/// and raw replay RNGs produce identical programs.
pub trait Draw {
    fn below(&mut self, n: u64) -> u64;
}

/// Replay-side draws: the same `(seed, case)` stream `pt::check` uses.
///
/// Note this deliberately bypasses [`KeyedRng::below`], whose rejection
/// sampling consumes a data-dependent number of words and would diverge
/// from [`pt::Source::below`]'s `% n`.
pub struct RngDraw(KeyedRng);

impl RngDraw {
    pub fn new(seed: u64, case: u64) -> Self {
        Self(KeyedRng::new(seed, case))
    }
}

impl Draw for RngDraw {
    fn below(&mut self, n: u64) -> u64 {
        self.0.next_u64() % n
    }
}

/// Fault-plan seed for sweep case `case` of suite seed `seed`.
///
/// A SplitMix64-style mix *outside* the frozen generator draw streams:
/// the program for `(seed, case)` is generated from the untouched
/// `RngDraw` stream, and the fault plan is drawn from this derived seed
/// via [`tshmem::FaultPlan::from_seed`] — so adding fault injection to
/// a sweep changes no generated program (the gen-1/2/3 canary streams
/// stay byte-identical) and every faulted run is replayable with
/// `--fault-plan`.
pub fn fault_plan_seed(seed: u64, case: u64) -> u64 {
    let mut z = seed ^ 0xFA17_1A9E_5EED_0001u64.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Harness-side draws, recorded on the shrinkable tape.
pub struct SourceDraw<'a>(pub &'a mut pt::Source);

impl Draw for SourceDraw<'_> {
    fn below(&mut self, n: u64) -> u64 {
        self.0.below(n)
    }
}

/// `pt::Strategy` adapter so programs shrink like any other input.
pub struct ProgramStrategy {
    pub npes: usize,
    /// Generator vocabulary version ([`GEN_V1`] / [`GEN_V2`]).
    pub version: u32,
}

impl pt::Strategy for ProgramStrategy {
    type Value = Program;

    fn generate(&self, src: &mut pt::Source) -> Program {
        gen_program_v(&mut SourceDraw(src), self.npes, self.version)
    }
}

fn word(d: &mut impl Draw) -> u64 {
    d.below(u64::MAX)
}

/// Draw a random active set `(start, log2_stride, size)` fitting `npes`.
fn gen_set(d: &mut impl Draw, npes: usize) -> (usize, u32, usize) {
    let size = 1 + d.below(npes as u64) as usize;
    let mut max_log = 0u32;
    while size > 1 && (size - 1) << (max_log + 1) < npes {
        max_log += 1;
    }
    let log2_stride = d.below(max_log as u64 + 1) as u32;
    let span = (size - 1) << log2_stride;
    let start = d.below((npes - span) as u64) as usize;
    (start, log2_stride, size)
}

fn gen_rma_op(d: &mut impl Draw, npes: usize, version: u32) -> RmaOp {
    let pe = d.below(npes as u64) as usize;
    let kinds = if version >= GEN_V2 { 14 } else { 12 };
    match d.below(kinds) {
        0 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            RmaOp::PutHeapElem { to: pe, slot, val: word(d) }
        }
        1 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((SLOTS_PER_PE - slot) as u64) as usize;
            RmaOp::PutHeapBulk { to: pe, slot, vals: (0..n).map(|_| word(d)).collect() }
        }
        2 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            let tst = 1 + d.below(3) as usize;
            let maxn = (SLOTS_PER_PE - 1 - slot) / tst + 1;
            let n = 1 + d.below(maxn as u64) as usize;
            RmaOp::IputHeap { to: pe, slot, tst, vals: (0..n).map(|_| word(d)).collect() }
        }
        3 => RmaOp::GetHeapElem { from: pe, slot: d.below(SLOTS_PER_PE as u64) as usize },
        4 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((SLOTS_PER_PE - slot) as u64) as usize;
            RmaOp::GetHeapBulk { from: pe, slot, n }
        }
        5 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((STAT_SLOTS_PER_PE - slot) as u64) as usize;
            RmaOp::PutStatic { to: pe, slot, vals: (0..n).map(|_| word(d)).collect() }
        }
        6 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let tst = 1 + d.below(3) as usize;
            let maxn = (STAT_SLOTS_PER_PE - 1 - slot) / tst + 1;
            let n = 1 + d.below(maxn as u64) as usize;
            RmaOp::IputStatic { to: pe, slot, tst, vals: (0..n).map(|_| word(d)).collect() }
        }
        7 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((STAT_SLOTS_PER_PE - slot) as u64) as usize;
            RmaOp::GetStatic { from: pe, slot, n }
        }
        8 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let sst = 1 + d.below(3) as usize;
            let maxn = (STAT_SLOTS_PER_PE - 1 - slot) / sst + 1;
            let n = 1 + d.below(maxn as u64) as usize;
            RmaOp::IgetStatic { from: pe, slot, sst, n }
        }
        9 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let dslot = d.below(SLOTS_PER_PE as u64) as usize;
            let lim = (STAT_SLOTS_PER_PE - slot).min(SLOTS_PER_PE - dslot);
            let n = 1 + d.below(lim as u64) as usize;
            RmaOp::PutSymDynToStatic { to: pe, slot, dslot, n }
        }
        10 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let dslot = d.below(SLOTS_PER_PE as u64) as usize;
            let lim = (STAT_SLOTS_PER_PE - slot).min(SLOTS_PER_PE - dslot);
            let n = 1 + d.below(lim as u64) as usize;
            RmaOp::GetSymStaticToDyn { from: pe, slot, dslot, n }
        }
        11 => RmaOp::CtrAdd { ctr: d.below(NCTRS as u64) as usize, amount: d.below(1000) },
        12 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            RmaOp::PtrPut { to: pe, slot, val: word(d) }
        }
        _ => RmaOp::PtrGet { from: pe, slot: d.below(SLOTS_PER_PE as u64) as usize },
    }
}

fn gen_aux_op(d: &mut impl Draw, npes: usize, slots: usize) -> AuxOp {
    let pe = d.below(npes as u64) as usize;
    match d.below(3) {
        0 => AuxOp::Put { to: pe, slot: d.below(slots as u64) as usize, val: word(d) },
        1 => {
            let slot = d.below(slots as u64) as usize;
            let n = 1 + d.below((slots - slot) as u64) as usize;
            AuxOp::PutBulk { to: pe, slot, vals: (0..n).map(|_| word(d)).collect() }
        }
        _ => AuxOp::Get { from: pe, slot: d.below(slots as u64) as usize },
    }
}

fn gen_nbi_op(d: &mut impl Draw, npes: usize) -> NbiOp {
    let pe = d.below(npes as u64) as usize;
    match d.below(6) {
        0 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((SLOTS_PER_PE - slot) as u64) as usize;
            NbiOp::PutNbiHeap { to: pe, slot, vals: (0..n).map(|_| word(d)).collect() }
        }
        1 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((STAT_SLOTS_PER_PE - slot) as u64) as usize;
            NbiOp::PutNbiStatic { to: pe, slot, vals: (0..n).map(|_| word(d)).collect() }
        }
        2 => {
            let slot = d.below(SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((SLOTS_PER_PE - slot) as u64) as usize;
            NbiOp::GetNbiHeap { from: pe, slot, n }
        }
        3 => {
            let slot = d.below(STAT_SLOTS_PER_PE as u64) as usize;
            let n = 1 + d.below((STAT_SLOTS_PER_PE - slot) as u64) as usize;
            NbiOp::GetNbiStatic { from: pe, slot, n }
        }
        4 => NbiOp::Fence,
        _ => NbiOp::Quiet,
    }
}

fn gen_aux_round(d: &mut impl Draw, npes: usize, slots: usize) -> Vec<Vec<AuxOp>> {
    (0..npes)
        .map(|_| {
            let nops = d.below(4) as usize;
            (0..nops).map(|_| gen_aux_op(d, npes, slots)).collect()
        })
        .collect()
}

/// Generate one program for `npes` PEs from the draw stream, using the
/// [`GEN_V1`] vocabulary (the frozen stream pinned canary seeds replay).
pub fn gen_program(d: &mut impl Draw, npes: usize) -> Program {
    gen_program_v(d, npes, GEN_V1)
}

/// Generate one program from the draw stream under the given generator
/// `version`. The stream behind each version is frozen: a `(seed, case,
/// version)` triple identifies a program byte-for-byte forever.
pub fn gen_program_v(d: &mut impl Draw, npes: usize, version: u32) -> Program {
    assert!(npes >= 1);
    assert!((GEN_V1..=GEN_LATEST).contains(&version), "unknown generator version {version}");
    // 64 B temp = 8 u64 per chunk: bulk static traffic and strided
    // redirections routinely span several temp round-trips.
    let temp_bytes = [64usize, 512][d.below(2) as usize];
    let algos = (d.below(4) as u8, d.below(3) as u8, d.below(2) as u8);
    let nsteps = 2 + d.below(5) as usize;
    let mut steps = Vec::with_capacity(nsteps);
    let mut coll_idx = 0usize;
    let step_kinds = match version {
        GEN_V1 => 6,
        GEN_V2 => 8,
        GEN_V3 => 9,
        _ => 12,
    };
    for _ in 0..nsteps {
        match d.below(step_kinds) {
            0 | 1 => {
                let ops = (0..npes)
                    .map(|_| {
                        let nops = d.below(5) as usize;
                        (0..nops).map(|_| gen_rma_op(d, npes, version)).collect()
                    })
                    .collect();
                steps.push(Step::Rma { ops, barrier: d.below(4) as u8 });
            }
            2..=4 => {
                let set = gen_set(d, npes);
                let kind = match d.below(4) {
                    0 => CollKind::Bcast { root_rank: d.below(set.2 as u64) as usize },
                    1 => CollKind::Reduce { op: d.below(5) as u8 },
                    2 => CollKind::Fcollect,
                    _ => CollKind::Collect,
                };
                let vals = (0..set.2).map(|_| (0..COLL_L).map(|_| word(d)).collect()).collect();
                steps.push(Step::Coll { kind, set, idx: coll_idx, vals });
                coll_idx += 1;
            }
            5 => steps.push(Step::Lock { rounds: 1 + d.below(2) as u32 }),
            6 => steps.push(Step::SignalRing { rounds: 1 + d.below(2) as u32 }),
            7 => steps.push(Step::CswapRing { rounds: 1 + d.below(2) as u32 }),
            8 => {
                // HeapChurn (V3+): only reachable when step_kinds >= 9,
                // so the V1/V2 draw streams stay frozen byte-for-byte.
                let slots = 4 + d.below(5) as usize;
                let refresh = d.below(2) == 1;
                let round1 = gen_aux_round(d, npes, slots);
                let round2 = gen_aux_round(d, npes, slots);
                steps.push(Step::HeapChurn {
                    slots,
                    refresh,
                    round1,
                    round2,
                    barrier: d.below(4) as u8,
                });
            }
            9 => {
                // NbiTrain (V4+): only reachable when step_kinds == 12,
                // keeping the V3 draw stream frozen in turn.
                let ops = (0..npes)
                    .map(|_| {
                        let nops = 1 + d.below(6) as usize;
                        (0..nops).map(|_| gen_nbi_op(d, npes)).collect()
                    })
                    .collect();
                steps.push(Step::NbiTrain { ops, barrier: d.below(4) as u8 });
            }
            10 => {
                // SignalChain (V4+): idx is always non-zero, so every
                // generated chain pins the indexed wait_until path.
                let rounds = 1 + d.below(3) as u32;
                let idx = 1 + d.below(NSIG as u64 - 1) as usize;
                let add = d.below(2) == 1;
                steps.push(Step::SignalChain { rounds, idx, add });
            }
            _ => {
                // TeamColl (V4+): split the world team and run the
                // collective through the Team methods.
                let split = gen_set(d, npes);
                let size = split.2;
                let kind = match d.below(5) {
                    0 => TeamKind::Bcast { root_rank: d.below(size as u64) as usize },
                    1 => TeamKind::Reduce { op: d.below(5) as u8 },
                    2 => TeamKind::Fcollect,
                    3 => TeamKind::Collect,
                    // Alltoall needs size * nelems to fit a COLL_L
                    // source row; degenerate teams fall back.
                    _ if size <= COLL_L => TeamKind::Alltoall { nelems: COLL_L / size },
                    _ => TeamKind::Fcollect,
                };
                let vals = (0..size).map(|_| (0..COLL_L).map(|_| word(d)).collect()).collect();
                steps.push(Step::TeamColl { kind, split, idx: coll_idx, vals });
                coll_idx += 1;
            }
        }
    }
    Program { npes, temp_bytes, algos, steps }
}

/// Number of `Coll` + `TeamColl` steps (each owns one region of the
/// shared `coll` array).
pub fn coll_steps(prog: &Program) -> usize {
    prog.steps
        .iter()
        .filter(|s| matches!(s, Step::Coll { .. } | Step::TeamColl { .. }))
        .count()
}

/// Elements of the shared `coll` array: one `[src | dest]` region per
/// collective step.
pub fn coll_len(prog: &Program) -> usize {
    coll_steps(prog).max(1) * (prog.npes + 1) * COLL_L
}

/// Byte offset of collective step `idx`'s region, in elements.
pub fn coll_base(prog: &Program, idx: usize) -> usize {
    idx * (prog.npes + 1) * COLL_L
}

/// Per-rank contribution size for `CollKind::Collect`.
pub fn collect_nelems(rank: usize, idx: usize) -> usize {
    1 + (rank + idx) % COLL_L
}
