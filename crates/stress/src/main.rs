//! Seed replay binary for the stress harness.
//!
//! A failing property run prints `seed=0x… case=N`; this binary
//! regenerates the identical program (same SplitMix64 stream, same
//! `% n` draws) and re-runs it under the watchdog:
//!
//! ```text
//! cargo run -p stress -- --seed 0x7453484d454d5031 --case 3 --pes 4 --depth 1
//! ```
//!
//! `--depth 0` (default) means unbounded queues. `--gen N` selects the
//! generator vocabulary version (default: latest; pinned canary seeds
//! replay with `--gen 1`). `--engine timed` runs the same program on
//! the virtual-time engine under its desim deadlock watchdog.
//! `--fault-plan S` installs the seeded fault plan `S` (replayable:
//! the same seed draws the same faults) before launching. `--canary`
//! re-enables the pre-fix blocking protocol sends (the PR-1
//! dissemination-barrier deadlock) so watchdog reports can be
//! reproduced on demand.

use std::process::ExitCode;
use std::time::Duration;

use stress::program::{gen_program_v, RngDraw, GEN_LATEST, GEN_V1};
use stress::run::{
    resolve_coop_workers, run_coop, run_multichip_mode, run_timed_mode, run_watched, Outcome,
};
use tshmem::TimedMode;
use stress::serve::{serve, Sched, ServeOpts};

#[derive(PartialEq)]
enum Engine {
    Native,
    Timed,
    Multichip,
    Coop,
}

struct Args {
    seed: u64,
    case: u64,
    pes: usize,
    depth: Option<usize>,
    stall_secs: u64,
    gen: u32,
    engine: Engine,
    cycle_box: bool,
    fault_plan: Option<u64>,
    canary: bool,
    workers: usize,
    serve: Option<ServeOpts>,
}

fn parse_num(s: &str) -> u64 {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        std::process::exit(2)
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: substrate::proptest_mini::Config::default().seed,
        case: 0,
        pes: 4,
        depth: None,
        stall_secs: 5,
        gen: GEN_LATEST,
        engine: Engine::Native,
        cycle_box: false,
        fault_plan: None,
        canary: false,
        workers: 0,
        serve: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value after {flag}");
                std::process::exit(2)
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = parse_num(&val()),
            "--case" => args.case = parse_num(&val()),
            // `--npes` is the alias the scaling docs use; both spellings
            // set the same field.
            "--pes" | "--npes" => args.pes = parse_num(&val()) as usize,
            "--workers" => args.workers = parse_num(&val()) as usize,
            "--depth" => {
                let d = parse_num(&val()) as usize;
                args.depth = (d > 0).then_some(d);
            }
            "--stall-secs" => args.stall_secs = parse_num(&val()),
            "--gen" => args.gen = parse_num(&val()) as u32,
            "--engine" => {
                args.engine = match val().as_str() {
                    "native" => Engine::Native,
                    "timed" => Engine::Timed,
                    "multichip" => Engine::Multichip,
                    "coop" => Engine::Coop,
                    other => {
                        eprintln!("unknown engine: {other} (native|timed|multichip|coop)");
                        std::process::exit(2);
                    }
                }
            }
            "--cycle-box" => args.cycle_box = true,
            "--fault-plan" => args.fault_plan = Some(parse_num(&val())),
            "--canary" => args.canary = true,
            "--serve" => {
                args.serve.get_or_insert_with(ServeOpts::default);
            }
            "--jobs" => {
                args.serve.get_or_insert_with(ServeOpts::default).jobs =
                    parse_num(&val()) as usize;
            }
            "--fault-frac" => {
                let v = val();
                let frac: f64 = v.parse().unwrap_or_else(|_| {
                    eprintln!("not a fraction: {v}");
                    std::process::exit(2)
                });
                args.serve.get_or_insert_with(ServeOpts::default).fault_frac = frac;
            }
            "--pool-workers" => {
                args.serve.get_or_insert_with(ServeOpts::default).pool_workers =
                    parse_num(&val()) as usize;
            }
            "--sched" => {
                let v = val();
                args.serve.get_or_insert_with(ServeOpts::default).sched = match v.as_str() {
                    "rr" | "round-robin" => Sched::RoundRobin,
                    "fair" => Sched::Fair,
                    other => {
                        eprintln!("unknown scheduler: {other} (rr|fair)");
                        std::process::exit(2);
                    }
                };
            }
            "--panic-pe" => {
                args.serve.get_or_insert_with(ServeOpts::default).panic_pe =
                    Some(parse_num(&val()) as usize);
            }
            "--help" | "-h" => {
                println!(
                    "usage: stress [--seed N] [--case N] [--pes N | --npes N] [--depth N] \
                     [--stall-secs N] [--gen N] [--engine native|timed|multichip|coop] \
                     [--cycle-box] [--workers M] [--fault-plan S] [--canary]\n       \
                     stress --serve [--seed N] [--jobs N] [--fault-frac F] \
                     [--pool-workers M] [--sched rr|fair] [--panic-pe P]\n\
                     Replays the stress program generated by (seed, case, gen) on \
                     `pes` PEs at UDN queue depth `depth` (0 = unbounded).\n\
                     --engine timed runs under virtual time with the desim \
                     deadlock watchdog instead of the wall-clock one; \
                     --engine multichip splits the (even) PE count across two \
                     simulated chips joined by an mPIPE link; \
                     --engine coop multiplexes the PEs over --workers OS threads \
                     (0 = auto) for 256–1024-PE oversubscription runs, with the \
                     stall window scaled accordingly.\n\
                     --cycle-box (timed/multichip only) selects the lockstep \
                     cycle-box scheduling discipline instead of exact \
                     event-driven order; the replay hint carries it, because \
                     the two modes take different schedules to the same \
                     final state.\n\
                     --fault-plan S installs the seeded fault plan S first.\n\
                     --canary reintroduces the pre-fix blocking protocol sends.\n\
                     --serve drives the multi-tenant server pool with an open-loop \
                     stream of --jobs seeded gen-v4 programs, a --fault-frac \
                     fraction of hostile tenants (panics + wedges), reporting \
                     jobs/sec and p50/p99 latency; --panic-pe P instead installs \
                     a one-shot PanicPe fault plan for PE P and requires exactly \
                     one Faulted job."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    // Cross-flag validation happens here, at parse time, so a bad
    // combination fails before any program generation or fault-plan
    // installation runs. The multichip engine splits the job across
    // exactly 2 simulated chips with npes/2 PEs on each, so an odd PE
    // count cannot be laid out.
    if args.cycle_box && !matches!(args.engine, Engine::Timed | Engine::Multichip) {
        eprintln!("--cycle-box selects a virtual-time scheduling discipline; it needs --engine timed or --engine multichip");
        std::process::exit(2);
    }
    if args.engine == Engine::Multichip && !args.pes.is_multiple_of(2) {
        eprintln!(
            "--engine multichip splits the PE count evenly across 2 chips; \
             --pes {} is odd — pick an even PE count",
            args.pes
        );
        std::process::exit(2);
    }
    // `--engine coop` without `--workers` (or with `--workers 0`) used
    // to hand the backend a zero and let it guess silently — and the
    // replay hint then printed the meaningless `--workers 0`. Resolve
    // the auto-size here, at parse time, with the same rule the backend
    // applies (host parallelism, at least 2, at most one worker per
    // PE), announce it, and bake the concrete M into the hint.
    if args.engine == Engine::Coop && args.workers == 0 {
        args.workers = resolve_coop_workers(0, args.pes);
        eprintln!(
            "--workers not given (or 0): auto-sized the coop worker pool to {} \
             from host parallelism; pass --workers M to pin it",
            args.workers
        );
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(mut opts) = args.serve {
        opts.seed = args.seed;
        let summary = serve(&opts);
        println!(
            "serve: {} jobs in {:.2} jobs/sec — {} completed, {} faulted, {} evicted, \
             {} shed; healthy latency p50={:?} p99={:?}; arenas fresh={} recycled={}",
            summary.jobs,
            summary.jobs_per_sec,
            summary.completed,
            summary.faulted,
            summary.evicted,
            summary.shed,
            summary.p50,
            summary.p99,
            summary.arenas_fresh,
            summary.arenas_recycled,
        );
        if summary.ok() {
            println!("serve: every job resolved in its expected outcome class");
            return ExitCode::SUCCESS;
        }
        for m in &summary.mismatches {
            println!("serve MISMATCH: {m}");
        }
        return ExitCode::from(2);
    }
    let prog = gen_program_v(&mut RngDraw::new(args.seed, args.case), args.pes, args.gen);
    // The resolved coop worker count is part of the replay identity
    // (stall windows scale with oversubscription), so the seed line
    // carries it whenever the coop engine runs.
    let workers = match args.engine {
        Engine::Coop => format!(" workers={}", args.workers),
        _ => String::new(),
    };
    eprintln!(
        "seed={:#018x} case={} pes={} depth={:?} gen={} temp={}B algos={:?} steps={}{workers}",
        args.seed,
        args.case,
        args.pes,
        args.depth,
        args.gen,
        prog.temp_bytes,
        prog.algos,
        prog.steps.len()
    );
    if let Some(fp) = args.fault_plan {
        let plan = tshmem::FaultPlan::from_seed(fp, args.pes);
        eprintln!("installing {}", plan.describe());
        tshmem::fault::install(plan);
    }
    if args.canary {
        eprintln!("canary mode: protocol sends degraded to pre-fix blocking sends");
        tshmem::fault::set_blocking_protocol_sends(true);
    }
    let hint = {
        let depth = args.depth.unwrap_or(0);
        let canary = if args.canary { " --canary" } else { "" };
        let gen = if args.gen != GEN_V1 { format!(" --gen {}", args.gen) } else { " --gen 1".into() };
        // The scheduling discipline is part of the replay identity: the
        // two modes reach the same final state along different
        // schedules, so the hint must pin the one that failed.
        let cb = if args.cycle_box { " --cycle-box" } else { "" };
        let engine = match args.engine {
            Engine::Native => String::new(),
            Engine::Timed => format!(" --engine timed{cb}"),
            Engine::Multichip => format!(" --engine multichip{cb}"),
            Engine::Coop => format!(" --engine coop --workers {}", args.workers),
        };
        let fp = match args.fault_plan {
            Some(s) => format!(" --fault-plan {s:#x}"),
            None => String::new(),
        };
        format!(
            "cargo run -p stress -- --seed {:#x} --case {} --pes {} --depth {}{gen}{engine}{fp}{canary}",
            args.seed, args.case, args.pes, depth
        )
    };
    let timed_mode = if args.cycle_box {
        TimedMode::cycle_box()
    } else {
        TimedMode::EventDriven
    };
    let outcome = match args.engine {
        Engine::Native => {
            run_watched(&prog, args.depth, Duration::from_secs(args.stall_secs), &hint)
        }
        Engine::Timed => run_timed_mode(&prog, args.depth, timed_mode, &hint),
        // Odd PE counts were rejected in parse_args, before anything ran.
        Engine::Multichip => run_multichip_mode(&prog, args.depth, timed_mode, &hint),
        Engine::Coop => run_coop(
            &prog,
            args.depth,
            args.workers,
            Duration::from_secs(args.stall_secs),
            &hint,
        ),
    };
    match outcome {
        Outcome::Completed => {
            println!("completed: final state matched the sequential oracle on every PE");
            ExitCode::SUCCESS
        }
        Outcome::Stalled(report) => {
            println!("{report}");
            ExitCode::from(2)
        }
    }
}
