//! Program execution, oracle verification, and the stall watchdog.
//!
//! [`run_on_ctx`] executes a [`Program`] on one PE and asserts its view
//! of the final state against [`crate::oracle::oracle`]. [`run_watched`]
//! wraps a launch in a wall-clock watchdog: the job runs on a detached
//! thread under [`tshmem::launch_watched`], the watchdog polls the
//! fabric progress counter, and if it stops moving for the stall window
//! the watchdog captures a per-PE diagnosis (blocked state, queue
//! occupancy, stash, last trace event), aborts the job, and returns
//! [`Outcome::Stalled`] with the report and a replay hint.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use substrate::channel::{self, RecvTimeoutError};
use tshmem::prelude::*;
use tshmem::runtime::{
    launch_coop_watched, launch_multichip_watched, launch_timed_watched, launch_watched,
};
use tshmem::{BlockedOn, JobWatch, TimedMode, TimedWatch};

use crate::oracle::{oracle, Model};
use crate::program::{
    chain_payload, coll_base, coll_len, collect_nelems, AuxOp, CollKind, NbiOp, Program, RmaOp,
    Step, TeamKind, CHAIN_W, COLL_L, NCTRS, NSIG, SLOTS_PER_PE, STAT_SLOTS_PER_PE,
};

/// Result of a watched run. Verification failures (oracle mismatches,
/// internal asserts) propagate as panics so `pt::check` can shrink them;
/// only watchdog-detected stalls are reified.
#[derive(Debug)]
pub enum Outcome {
    Completed,
    /// The job stopped making progress; the payload is the full per-PE
    /// stall diagnosis plus the replay hint.
    Stalled(String),
}

fn algos_of(prog: &Program) -> Algorithms {
    Algorithms {
        barrier: match prog.algos.0 {
            0 => BarrierAlgo::Ring,
            1 => BarrierAlgo::RootBroadcast,
            2 => BarrierAlgo::TmcSpin,
            _ => BarrierAlgo::Dissemination,
        },
        broadcast: match prog.algos.1 {
            0 => BroadcastAlgo::Pull,
            1 => BroadcastAlgo::Push,
            _ => BroadcastAlgo::Binomial,
        },
        reduce: match prog.algos.2 {
            0 => ReduceAlgo::Naive,
            _ => ReduceAlgo::RecursiveDoubling,
        },
    }
}

/// Runtime config for a program at the given UDN queue depth
/// (`None` = unbounded queues). Scales the device/partition geometry
/// with the PE count (`RuntimeConfig::for_scale`), so the same
/// generator vocabulary runs at 2 PEs and at 1024; the temp region is
/// clamped to 8 B per PE, the floor below which the chunked reduce
/// cannot carve per-sender slots.
pub fn build_cfg(prog: &Program, depth: Option<usize>) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::for_scale(prog.npes)
        .with_private_bytes(1 << 16)
        .with_temp_bytes(prog.temp_bytes.max(8 * prog.npes))
        .with_algos(algos_of(prog));
    if prog.npes <= 64 {
        // The historical stress geometry; past 64 PEs `for_scale`'s
        // 256 KB partitions keep 256-PE jobs inside 64 MB.
        cfg = cfg.with_partition_bytes(1 << 20);
    } else {
        // The harness's symmetric footprint scales with npes (the
        // data/chain/static arrays) and with the program's collective
        // step count (`coll_len`), so a fixed 256 KB partition
        // overflows at 1024 PEs. Grow to fit: 16 B per footprint word
        // doubles the raw array bytes, covering allocator headers, the
        // temp region, and the private block.
        let words = prog.npes * (SLOTS_PER_PE + CHAIN_W + STAT_SLOTS_PER_PE) + coll_len(prog);
        cfg = cfg.with_partition_bytes((256 * 1024).max(16 * words));
    }
    if let Some(d) = depth {
        cfg = cfg.with_bounded_udn(d);
    }
    cfg
}

/// Execute `prog` on this PE and verify its final view of every shared
/// array against the sequential oracle.
///
/// Computes a private oracle model per call. Fine for the small-PE
/// equivalence suites; large-`npes` launches should share one model
/// across all PEs via [`run_on_ctx_shared`] — the model holds
/// O(npes²) expectation arrays, so per-PE computation is quadratic
/// memory *times* npes (at 1024 PEs: ~350 MB of zeroed arrays per PE,
/// ~350 GB across a launch, which is what it cost before the launch
/// wrappers switched to the shared variant).
pub fn run_on_ctx(prog: &Program, ctx: &ShmemCtx) {
    run_on_ctx_shared(prog, ctx, &OnceLock::new())
}

/// [`run_on_ctx`] with the oracle model computed once per *launch*:
/// the first PE to reach verification initializes the shared cell and
/// every other PE checks against the same model.
pub fn run_on_ctx_shared(prog: &Program, ctx: &ShmemCtx, shared_model: &OnceLock<Model>) {
    let me = ctx.my_pe();
    let npes = ctx.n_pes();
    assert_eq!(npes, prog.npes);
    let hs = me * SLOTS_PER_PE;
    let ss = me * STAT_SLOTS_PER_PE;

    let data = ctx.shmalloc::<u64>(npes * SLOTS_PER_PE);
    let coll = ctx.shmalloc::<u64>(coll_len(prog));
    let ctrs = ctx.shmalloc::<u64>(NCTRS);
    // lockctr[0] = protected counter, lockctr[1] = mutual-exclusion
    // marker (must read 0 inside the critical section).
    let lockctr = ctx.shmalloc::<u64>(2);
    let lock = ctx.shmalloc::<i64>(1);
    // Token cells for the V2 liveness mixes: `sig` is the signal-ring
    // flag (every copy written), `ring` the single contended cswap cell
    // (PE 0's copy only).
    let sig = ctx.shmalloc::<u64>(1);
    let ring = ctx.shmalloc::<u64>(1);
    // V4 put_signal chains: `sigs` holds the indexed signal words,
    // `chaind` the delivered payloads (stripe `p` written by PE `p`).
    let sigs = ctx.shmalloc::<u64>(NSIG);
    let chaind = ctx.shmalloc::<u64>(npes * CHAIN_W);
    let statv = ctx.static_sym::<u64>(npes * STAT_SLOTS_PER_PE);
    ctx.local_fill(&data, 0u64);
    ctx.local_fill(&coll, 0u64);
    ctx.local_fill(&ctrs, 0u64);
    ctx.local_fill(&lockctr, 0u64);
    ctx.local_fill(&lock, 0i64);
    ctx.local_fill(&sig, 0u64);
    ctx.local_fill(&ring, 0u64);
    ctx.local_fill(&sigs, 0u64);
    ctx.local_fill(&chaind, 0u64);
    ctx.local_fill(&statv, 0u64);
    ctx.barrier_all();

    let mut gets: Vec<u64> = Vec::new();
    let mut sig_base = 0u64;
    let mut ring_base = 0u64;
    let mut chain_bases = [0u64; NSIG];
    for step in &prog.steps {
        match step {
            Step::Rma { ops, barrier } => {
                for op in &ops[me] {
                    match op {
                        RmaOp::PutHeapElem { to, slot, val } => ctx.p(&data, hs + slot, *val, *to),
                        RmaOp::PutHeapBulk { to, slot, vals } => ctx.put(&data, hs + slot, vals, *to),
                        RmaOp::IputHeap { to, slot, tst, vals } => {
                            ctx.iput(&data, hs + slot, *tst, vals, 1, vals.len(), *to)
                        }
                        RmaOp::GetHeapElem { from, slot } => gets.push(ctx.g(&data, hs + slot, *from)),
                        RmaOp::GetHeapBulk { from, slot, n } => {
                            let mut buf = vec![0u64; *n];
                            ctx.get(&mut buf, &data, hs + slot, *from);
                            gets.extend_from_slice(&buf);
                        }
                        RmaOp::PutStatic { to, slot, vals } => ctx.put(&statv, ss + slot, vals, *to),
                        RmaOp::IputStatic { to, slot, tst, vals } => {
                            ctx.iput(&statv, ss + slot, *tst, vals, 1, vals.len(), *to)
                        }
                        RmaOp::GetStatic { from, slot, n } => {
                            let mut buf = vec![0u64; *n];
                            ctx.get(&mut buf, &statv, ss + slot, *from);
                            gets.extend_from_slice(&buf);
                        }
                        RmaOp::IgetStatic { from, slot, sst, n } => {
                            let mut buf = vec![0u64; *n];
                            ctx.iget(&mut buf, 1, &statv, ss + slot, *sst, *n, *from);
                            gets.extend_from_slice(&buf);
                        }
                        RmaOp::PutSymDynToStatic { to, slot, dslot, n } => {
                            ctx.put_sym(&statv, ss + slot, &data, hs + dslot, *n, *to)
                        }
                        RmaOp::GetSymStaticToDyn { from, slot, dslot, n } => {
                            ctx.get_sym(&data, hs + dslot, &statv, ss + slot, *n, *from)
                        }
                        RmaOp::CtrAdd { ctr, amount } => ctx.add(&ctrs, *ctr, *amount, 0),
                        RmaOp::PtrPut { to, slot, val } => {
                            let p = ctx
                                .ptr(&data, *to)
                                .expect("heap symmetric objects are always directly addressable");
                            unsafe { p.add(hs + slot).write_volatile(*val) }
                        }
                        RmaOp::PtrGet { from, slot } => {
                            let p = ctx
                                .ptr(&data, *from)
                                .expect("heap symmetric objects are always directly addressable");
                            gets.push(unsafe { p.add(hs + slot).read_volatile() })
                        }
                    }
                }
                ctx.quiet();
                let world = ctx.world();
                match barrier {
                    0 => ctx.barrier_all(),
                    1 => ctx.barrier_ring_explicit(world),
                    2 => ctx.barrier_root_broadcast_explicit(world),
                    _ => ctx.barrier_dissemination_explicit(world),
                }
            }
            Step::Coll { kind, set, idx, vals } => {
                let set = ActiveSet::new(set.0, set.1, set.2);
                let Some(rank) = set.rank_of(me) else { continue };
                let base = coll_base(prog, *idx);
                let src = coll.slice(base, COLL_L);
                let dest = coll.slice(base + COLL_L, npes * COLL_L);
                ctx.local_write(&src, 0, &vals[rank]);
                match kind {
                    CollKind::Bcast { root_rank } => {
                        ctx.broadcast(&dest, &src, COLL_L, *root_rank, set)
                    }
                    CollKind::Reduce { op } => {
                        let rop = match op {
                            0 => ReduceOp::Sum,
                            1 => ReduceOp::Min,
                            2 => ReduceOp::Max,
                            3 => ReduceOp::Or,
                            _ => ReduceOp::Xor,
                        };
                        ctx.reduce(rop, &dest, &src, COLL_L, set);
                    }
                    CollKind::Fcollect => ctx.fcollect(&dest, &src, COLL_L, set),
                    CollKind::Collect => {
                        let mine = collect_nelems(rank, *idx);
                        let expected: usize =
                            (0..set.size).map(|r| collect_nelems(r, *idx)).sum();
                        let total = ctx.collect(&dest, &src, mine, set);
                        assert_eq!(total, expected, "collect total mismatch");
                    }
                }
            }
            Step::Lock { rounds } => {
                for _ in 0..*rounds {
                    ctx.set_lock(&lock);
                    let marker = ctx.g(&lockctr, 1, 0);
                    assert_eq!(marker, 0, "mutual exclusion violated: PE {} saw marker {marker}", me);
                    ctx.p(&lockctr, 1, me as u64 + 1, 0);
                    let c = ctx.g(&lockctr, 0, 0);
                    ctx.p(&lockctr, 0, c + 1, 0);
                    ctx.p(&lockctr, 1, 0u64, 0);
                    ctx.clear_lock(&lock);
                }
            }
            Step::SignalRing { rounds } => {
                // Pass a token once around the ring per round: PE 0
                // seeds it, everyone else forwards on arrival, PE 0
                // absorbs the wrap-around. Each PE leaves the step with
                // its own copy already at the final value.
                let next = (me + 1) % npes;
                for r in 0..*rounds {
                    let target = sig_base + r as u64 + 1;
                    if me == 0 {
                        ctx.p(&sig, 0, target, next);
                        ctx.wait_until(&sig, 0, Cmp::Ge, target);
                    } else {
                        ctx.wait_until(&sig, 0, Cmp::Ge, target);
                        ctx.p(&sig, 0, target, next);
                    }
                }
                sig_base += *rounds as u64;
            }
            Step::CswapRing { rounds } => {
                // Rank-ordered claims: PE `me`'s round-`r` claim only
                // succeeds once the cell reaches its token, so every
                // other PE's attempt fails (and counts a spin retry)
                // until then. `arena_cswap` charges cycles even on
                // failure, which keeps the timed engine's conservative
                // scheduler advancing through the contention.
                for r in 0..*rounds {
                    let t = ring_base + r as u64 * npes as u64 + me as u64;
                    while ctx.cswap(&ring, 0, t, t + 1, 0) != t {}
                }
                ring_base += *rounds as u64 * npes as u64;
            }
            Step::HeapChurn { slots, refresh, round1, round2, barrier } => {
                // Collective scratch array, zeroed on every copy before
                // traffic starts (remote puts must not race the fill).
                let slots = *slots;
                let total = npes * slots;
                let base = me * slots;
                let mut aux = ctx.shmalloc::<u64>(total);
                ctx.local_fill(&aux, 0u64);
                ctx.barrier_all();
                for (round, ops) in [round1, round2].into_iter().enumerate() {
                    for op in &ops[me] {
                        match op {
                            AuxOp::Put { to, slot, val } => ctx.p(&aux, base + slot, *val, *to),
                            AuxOp::PutBulk { to, slot, vals } => {
                                ctx.put(&aux, base + slot, vals, *to)
                            }
                            AuxOp::Get { from, slot } => {
                                gets.push(ctx.g(&aux, base + slot, *from))
                            }
                        }
                    }
                    ctx.quiet();
                    let world = ctx.world();
                    match barrier {
                        0 => ctx.barrier_all(),
                        1 => ctx.barrier_ring_explicit(world),
                        2 => ctx.barrier_root_broadcast_explicit(world),
                        _ => ctx.barrier_dissemination_explicit(world),
                    }
                    if round == 0 {
                        if *refresh {
                            // Free-then-reallocate: the replacement block
                            // may land at a different offset and starts
                            // with stale contents, so every PE re-zeroes
                            // its copy before traffic resumes.
                            ctx.shfree(aux);
                            aux = ctx.shmalloc::<u64>(total);
                            ctx.local_fill(&aux, 0u64);
                        } else {
                            // Grow one slot per PE. `shrealloc` preserves
                            // only the old prefix — the grown tail holds
                            // whatever the heap block held before, so it
                            // is zeroed explicitly. The tail is never
                            // written remotely, which keeps the local
                            // fill race-free.
                            aux = ctx.shrealloc(aux, total + npes);
                            ctx.local_fill(&aux.slice(total, npes), 0u64);
                        }
                        ctx.barrier_all();
                    }
                }
                // Dump the full local copy into the recorded stream —
                // this is how the refreshed contents and the grown tail
                // get oracle-checked — then complete the churn cycle.
                gets.extend(ctx.local_read(&aux, 0, aux.len()));
                ctx.shfree(aux);
            }
            Step::NbiTrain { ops, barrier } => {
                // get_nbi buffers are only read after the closing quiet:
                // per the OpenSHMEM contract they are undefined before
                // completion, and deferring the reads keeps the eager
                // and lazy completion modes on the same recorded stream.
                let mut bufs: Vec<Vec<u64>> = Vec::new();
                for op in &ops[me] {
                    match op {
                        NbiOp::PutNbiHeap { to, slot, vals } => {
                            ctx.put_nbi(&data, hs + slot, vals, *to)
                        }
                        NbiOp::PutNbiStatic { to, slot, vals } => {
                            ctx.put_nbi(&statv, ss + slot, vals, *to)
                        }
                        NbiOp::GetNbiHeap { from, slot, n } => {
                            let mut buf = vec![0u64; *n];
                            ctx.get_nbi(&mut buf, &data, hs + slot, *from);
                            bufs.push(buf);
                        }
                        NbiOp::GetNbiStatic { from, slot, n } => {
                            let mut buf = vec![0u64; *n];
                            ctx.get_nbi(&mut buf, &statv, ss + slot, *from);
                            bufs.push(buf);
                        }
                        NbiOp::Fence => ctx.fence(),
                        NbiOp::Quiet => ctx.quiet(),
                    }
                }
                ctx.quiet();
                for buf in &bufs {
                    gets.extend_from_slice(buf);
                }
                let world = ctx.world();
                match barrier {
                    0 => ctx.barrier_all(),
                    1 => ctx.barrier_ring_explicit(world),
                    2 => ctx.barrier_root_broadcast_explicit(world),
                    _ => ctx.barrier_dissemination_explicit(world),
                }
            }
            Step::SignalChain { rounds, idx, add } => {
                // Token ring over put_signal: the payload lands in our
                // stripe of `chaind` on the next PE, then `sigs[idx]`
                // there reaches the round target (one Set, or one Add
                // per received hop — same final value). Receivers read
                // *before* forwarding, so a payload slot is never
                // overwritten by the next round until its reader is
                // done (the wrap-around cannot pass a PE that has not
                // forwarded yet).
                let next = (me + 1) % npes;
                let prev = (me + npes - 1) % npes;
                let base = chain_bases[*idx];
                for r in 0..*rounds {
                    let target = base + r as u64 + 1;
                    let payload = chain_payload(base, r, me);
                    let send = |ctx: &ShmemCtx| {
                        let (val, op) =
                            if *add { (1, SignalOp::Add) } else { (target, SignalOp::Set) };
                        ctx.put_signal(&chaind, me * CHAIN_W, &payload, &sigs, *idx, val, op, next);
                    };
                    if me == 0 {
                        send(ctx);
                        ctx.wait_until(&sigs, *idx, Cmp::Ge, target);
                        gets.extend(ctx.local_read(&chaind, prev * CHAIN_W, CHAIN_W));
                    } else {
                        ctx.wait_until(&sigs, *idx, Cmp::Ge, target);
                        gets.extend(ctx.local_read(&chaind, prev * CHAIN_W, CHAIN_W));
                        send(ctx);
                    }
                }
                chain_bases[*idx] += *rounds as u64;
            }
            Step::TeamColl { kind, split, idx, vals } => {
                // Non-members get SHMEM_TEAM_INVALID (None) and skip —
                // the team collectives barrier over the member set only.
                let Some(team) = ctx.team_world().split_strided(split.0, split.1, split.2)
                else {
                    continue;
                };
                let rank = team.my_pe();
                let base = coll_base(prog, *idx);
                let src = coll.slice(base, COLL_L);
                let dest = coll.slice(base + COLL_L, npes * COLL_L);
                ctx.local_write(&src, 0, &vals[rank]);
                match kind {
                    TeamKind::Bcast { root_rank } => {
                        team.broadcast(ctx, &dest, &src, COLL_L, *root_rank)
                    }
                    TeamKind::Reduce { op } => {
                        let rop = match op {
                            0 => ReduceOp::Sum,
                            1 => ReduceOp::Min,
                            2 => ReduceOp::Max,
                            3 => ReduceOp::Or,
                            _ => ReduceOp::Xor,
                        };
                        team.reduce(ctx, rop, &dest, &src, COLL_L);
                    }
                    TeamKind::Fcollect => team.fcollect(ctx, &dest, &src, COLL_L),
                    TeamKind::Collect => {
                        let mine = collect_nelems(rank, *idx);
                        let expected: usize =
                            (0..team.n_pes()).map(|r| collect_nelems(r, *idx)).sum();
                        let total = team.collect(ctx, &dest, &src, mine);
                        assert_eq!(total, expected, "team collect total mismatch");
                    }
                    TeamKind::Alltoall { nelems } => team.alltoall(ctx, &dest, &src, *nelems),
                }
            }
        }
    }

    ctx.quiet();
    ctx.barrier_all();

    // Verify this PE's entire view against the oracle. `get_or_init`
    // briefly blocks the other workers' running PEs while the first
    // arrival computes the model; that pause is seconds at worst and
    // the scaled watchdog window dwarfs it.
    let model = shared_model.get_or_init(|| oracle(prog));
    let got_heap = ctx.local_read(&data, 0, data.len());
    assert_eq!(got_heap, model.heap[me], "PE {me}: heap copy diverged from oracle");
    let got_stat = ctx.local_read(&statv, 0, statv.len());
    assert_eq!(got_stat, model.stat[me], "PE {me}: static segment diverged from oracle");
    let got_coll = ctx.local_read(&coll, 0, coll.len());
    assert_eq!(got_coll, model.coll[me], "PE {me}: collective scratch diverged from oracle");
    assert_eq!(gets, model.gets[me], "PE {me}: recorded get results diverged from oracle");
    assert_eq!(
        ctx.local_read(&sig, 0, 1)[0],
        model.sig,
        "PE {me}: signal-ring cell diverged from oracle"
    );
    assert_eq!(
        ctx.local_read(&sigs, 0, NSIG),
        model.sigs,
        "PE {me}: indexed signal words diverged from oracle"
    );
    assert_eq!(
        ctx.local_read(&chaind, 0, chaind.len()),
        model.chaind[me],
        "PE {me}: put_signal payload array diverged from oracle"
    );
    if me == 0 {
        let got_ctrs = ctx.local_read(&ctrs, 0, NCTRS);
        assert_eq!(got_ctrs, model.ctrs, "atomic counters diverged from oracle");
        assert_eq!(ctx.local_read(&lockctr, 0, 1)[0], model.lock_ctr, "lock-protected counter diverged");
        assert_eq!(ctx.local_read(&lockctr, 1, 1)[0], 0, "lock marker left set");
        assert_eq!(ctx.local_read(&ring, 0, 1)[0], model.ring, "cswap-ring cell diverged from oracle");
    }
    ctx.barrier_all();
}

/// Run `prog` without a watchdog (panics surface directly).
pub fn run_plain(prog: &Program, depth: Option<usize>) {
    let cfg = build_cfg(prog, depth);
    let cell = OnceLock::new();
    tshmem::launch(&cfg, |ctx| run_on_ctx_shared(prog, ctx, &cell));
}

/// How often the watchdog samples the progress counter.
const POLL: Duration = Duration::from_millis(50);

/// Run `prog` under the stall watchdog.
///
/// `stall` is the wall-clock window with zero *useful* fabric progress
/// (spin retries do not count) after which the job is declared wedged.
/// `replay_hint` is appended to the stall report so the failure names
/// its own reproducer.
pub fn run_watched(
    prog: &Program,
    depth: Option<usize>,
    stall: Duration,
    replay_hint: &str,
) -> Outcome {
    let prog = Arc::new(prog.clone());
    let cfg = build_cfg(&prog, depth);
    let p = Arc::clone(&prog);
    let cell = OnceLock::new();
    watch_native(cfg, stall, format!("replay: {replay_hint}\n"), move |ctx| {
        run_on_ctx_shared(&p, ctx, &cell)
    })
}

/// Run an arbitrary per-PE closure under the same native stall
/// watchdog as [`run_watched`] — for hand-built liveness canaries that
/// are not expressible as a [`Program`].
pub fn watch_closure<F>(cfg: &RuntimeConfig, stall: Duration, label: &str, f: F) -> Outcome
where
    F: Fn(&ShmemCtx) + Send + Sync + 'static,
{
    watch_native(*cfg, stall, format!("scenario: {label}\n"), f)
}

/// Run `prog` on the **coop** M:N engine under the wall-clock watchdog,
/// with the stall window scaled by the oversubscription factor (see
/// [`scaled_stall`]). `workers == 0` lets the backend size the pool
/// from the host.
pub fn run_coop(
    prog: &Program,
    depth: Option<usize>,
    workers: usize,
    stall: Duration,
    replay_hint: &str,
) -> Outcome {
    let prog = Arc::new(prog.clone());
    let cfg = build_cfg(&prog, depth);
    let p = Arc::clone(&prog);
    let cell = OnceLock::new();
    watch_wall(cfg, Some(workers), stall, format!("replay: {replay_hint}\n"), move |ctx| {
        run_on_ctx_shared(&p, ctx, &cell)
    })
}

/// Coop variant of [`watch_closure`], for oversubscription liveness
/// canaries.
pub fn watch_closure_coop<F>(
    cfg: &RuntimeConfig,
    workers: usize,
    stall: Duration,
    label: &str,
    f: F,
) -> Outcome
where
    F: Fn(&ShmemCtx) + Send + Sync + 'static,
{
    watch_wall(*cfg, Some(workers), stall, format!("scenario: {label}\n"), f)
}

/// Run `prog` on the **timed** engine under its deadlock watchdog.
///
/// There is no wall-clock stall window: the desim scheduler detects the
/// instant the virtual event queue drains with LPs still parked, and
/// the attached [`TimedWatch`] renders the per-PE diagnosis. Oracle
/// mismatches still propagate as panics.
pub fn run_timed(prog: &Program, depth: Option<usize>, replay_hint: &str) -> Outcome {
    run_timed_mode(prog, depth, TimedMode::EventDriven, replay_hint)
}

/// [`run_timed`] with an explicit scheduling discipline — cycle-box
/// replays pass [`TimedMode::cycle_box`] here, and the replay hint is
/// expected to carry `--cycle-box` so the seed line reproduces the same
/// schedule.
pub fn run_timed_mode(
    prog: &Program,
    depth: Option<usize>,
    mode: TimedMode,
    replay_hint: &str,
) -> Outcome {
    let prog = Arc::new(prog.clone());
    let cfg = build_cfg(&prog, depth).with_timed_mode(mode);
    let watch = Arc::new(TimedWatch::new());
    let p = Arc::clone(&prog);
    let cell = OnceLock::new();
    match launch_timed_watched(&cfg, &watch, move |ctx| run_on_ctx_shared(&p, ctx, &cell)) {
        Ok(_) => Outcome::Completed,
        Err(report) => Outcome::Stalled(format!("{report}replay: {replay_hint}\n")),
    }
}

/// Run `prog` on the **multichip** engine — two simulated chips joined
/// by an mPIPE link, half the PEs on each — under the same desim
/// drained-queue deadlock watchdog as [`run_timed`].
///
/// `npes` must be even. A configured `TmcSpin` barrier is remapped to
/// `Dissemination` (with a note on stderr): the TMC spin barrier is a
/// single-chip hardware primitive and the multichip backend rejects it.
pub fn run_multichip(prog: &Program, depth: Option<usize>, replay_hint: &str) -> Outcome {
    run_multichip_mode(prog, depth, TimedMode::EventDriven, replay_hint)
}

/// [`run_multichip`] with an explicit scheduling discipline.
pub fn run_multichip_mode(
    prog: &Program,
    depth: Option<usize>,
    mode: TimedMode,
    replay_hint: &str,
) -> Outcome {
    assert!(
        prog.npes.is_multiple_of(2),
        "multichip stress runs split PEs across 2 chips; need an even PE count (got {})",
        prog.npes
    );
    let prog = Arc::new(prog.clone());
    let mut cfg = build_cfg(&prog, depth).with_timed_mode(mode);
    // launch_multichip interprets cfg.npes as PEs *per chip*.
    cfg.npes = prog.npes / 2;
    if cfg.algos.barrier == BarrierAlgo::TmcSpin {
        eprintln!(
            "note: program drew the TmcSpin barrier, which cannot span chips; \
             running with Dissemination instead"
        );
        cfg.algos.barrier = BarrierAlgo::Dissemination;
    }
    let watch = Arc::new(TimedWatch::new());
    let p = Arc::clone(&prog);
    let cell = OnceLock::new();
    match launch_multichip_watched(&cfg, 2, &watch, move |ctx| {
        run_on_ctx_shared(&p, ctx, &cell)
    }) {
        Ok(_) => Outcome::Completed,
        Err(report) => Outcome::Stalled(format!("{report}replay: {replay_hint}\n")),
    }
}

// The stall-window scaling and livelock/deadlock classification moved
// into the core watch module so the server layer's per-tenant
// supervision shares one implementation; re-exported here for the
// existing stress API surface.
pub use tshmem::watch::{classify_stall, scaled_stall};

/// Resolve a `--workers` request to the concrete coop pool size, with
/// the same rule the backend applies for `0` (auto): host parallelism,
/// at least 2, at most one worker per PE. Both the CLI and the `dump`
/// example bake this resolved M into replay hints, so a seed replay is
/// byte-faithful on a host with a different core count.
pub fn resolve_coop_workers(requested: usize, pes: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    // Auto case: one rule, owned by the backend (via the core shim), so
    // replay hints and benchmark rows can never drift from what a
    // launch actually runs on.
    tshmem::resolve_coop_workers(0, pes.max(1))
}

fn watch_native<F>(cfg: RuntimeConfig, stall: Duration, trailer: String, f: F) -> Outcome
where
    F: Fn(&ShmemCtx) + Send + Sync + 'static,
{
    watch_wall(cfg, None, stall, trailer, f)
}

/// Shared wall-clock watchdog over a native (`workers == None`) or coop
/// launch. The effective stall window is re-derived every poll from the
/// attached job's oversubscription factor, so it is correct even before
/// the launch attaches (factor 1) and under `workers == 0` auto-sizing.
fn watch_wall<F>(
    cfg: RuntimeConfig,
    workers: Option<usize>,
    stall: Duration,
    trailer: String,
    f: F,
) -> Outcome
where
    F: Fn(&ShmemCtx) + Send + Sync + 'static,
{
    let watch = Arc::new(JobWatch::new());
    let (tx, rx) = channel::bounded::<std::thread::Result<()>>(1);
    let w = Arc::clone(&watch);
    // Detached on purpose: if the job truly deadlocks, its PE threads
    // can never be joined. `abort()` unwedges every PE parked in a
    // fabric wait; threads stuck in plain (fault-injected) channel
    // sends leak until process exit, which is why the canary lives in
    // its own test binary.
    std::thread::Builder::new()
        .name("stress-job".into())
        .spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(|| match workers {
                None => {
                    launch_watched(&cfg, &w, f);
                }
                Some(m) => {
                    launch_coop_watched(&cfg, m, &w, f);
                }
            }));
            let _ = tx.try_send(r.map(|_| ()));
        })
        .expect("spawn stress job thread");

    let mut last_ops = 0u64;
    // Counter snapshot from the last moment useful work moved — the
    // baseline the stall window's deltas (and the livelock-vs-deadlock
    // call) are measured against.
    let mut baseline = watch.counters();
    let mut last_change = Instant::now();
    loop {
        match rx.recv_timeout(POLL) {
            Ok(Ok(())) => return Outcome::Completed,
            // A verification failure inside the job: re-raise it here so
            // the property harness sees (and shrinks) it.
            Ok(Err(payload)) => resume_unwind(payload),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                panic!("stress job thread exited without reporting")
            }
        }
        let ops = watch.total_ops();
        let window = scaled_stall(stall, watch.oversubscription());
        if ops != last_ops || baseline.is_empty() {
            last_ops = ops;
            baseline = watch.counters();
            last_change = Instant::now();
        } else if last_change.elapsed() >= window {
            // Diagnose BEFORE aborting: abort unparks the blocked PEs
            // and would destroy the evidence.
            let now = watch.counters();
            let blocked = watch.blocked_states();
            let npes = now.len() / 2;
            let class = classify_stall(now.iter().enumerate().take(npes).map(|(i, n)| {
                let b = baseline.get(i).copied().unwrap_or_default();
                let descheduled = matches!(blocked.get(i), Some(BlockedOn::Descheduled));
                (
                    n.ops.saturating_sub(b.ops),
                    n.spins.saturating_sub(b.spins),
                    descheduled,
                )
            }));
            let mut report = format!(
                "stress watchdog: no useful fabric progress for {:.1}s \
                 (useful ops {ops}, spin retries {})\nclassification: {class}\n{}",
                window.as_secs_f64(),
                watch.total_spins(),
                watch.diagnose_delta(Some(&baseline))
            );
            if let Some(desc) = tshmem::fault::describe_active() {
                report.push_str(&format!("active {desc}\n"));
            }
            report.push_str(&trailer);
            watch.abort();
            // Grace period for the abort panic to unwind the job; a job
            // wedged outside any abort checkpoint just leaks.
            let _ = rx.recv_timeout(Duration::from_secs(2));
            return Outcome::Stalled(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descheduled_pes_do_not_count_as_frozen() {
        // Pre-fix, a parked-but-runnable coop PE (zero deltas, queued
        // for a worker slot) forced the frozen path and misreported
        // oversubscribed livelocks as deadlocks.
        let oversubscribed = [(0, 5, false), (0, 0, true), (0, 0, true)];
        assert!(classify_stall(oversubscribed).starts_with("livelock"));
        let really_frozen = [(0, 5, false), (0, 0, false)];
        assert!(classify_stall(really_frozen).starts_with("deadlock (at least one PE frozen"));
        let silent = [(0, 0, true), (0, 0, true)];
        assert!(classify_stall(silent).starts_with("deadlock (no useful work"));
    }

    #[test]
    fn stall_window_scales_with_oversubscription_and_caps() {
        let base = Duration::from_secs(2);
        assert_eq!(scaled_stall(base, 0), base);
        assert_eq!(scaled_stall(base, 1), base);
        assert_eq!(scaled_stall(base, 8), base * 8);
        assert_eq!(scaled_stall(base, 128), base * 64);
    }
}
