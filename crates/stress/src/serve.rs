//! Open-loop load harness for the `tshmem::server` multi-tenant pool.
//!
//! `stress --serve` queues a seeded stream of gen-v4 oracle-checked
//! programs (2–8 PEs each) against a resident [`Server`], with a
//! configurable fraction of jobs replaced by hostile tenants — mostly
//! caught-class panics, plus deliberate wedges that must be diagnosed
//! and evicted. The harness tracks each job's *expected* outcome class
//! and fails loudly on any divergence:
//!
//! - a healthy job must come back [`JobOutcome::Completed`] (the body
//!   is `run_on_ctx`, which asserts the sequential oracle internally);
//! - a seeded panic must come back [`JobOutcome::Faulted`];
//! - a seeded wedge must come back [`JobOutcome::Evicted`] carrying the
//!   per-PE stall diagnosis — never a pool stall.
//!
//! Throughput (jobs/sec) and latency quantiles (p50/p99 of
//! submit→resolve wall time) are printed for the healthy population;
//! `microbench --server-suite` measures the same numbers fault-free
//! under controlled reps for the committed baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tshmem::prelude::*;
use tshmem::{JobOutcome, JobSpec, Server, ServerConfig};

use crate::program::{gen_program_v, Draw, RngDraw, GEN_V4};
use crate::run::{build_cfg, run_on_ctx};

/// Which scheduler the serve run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sched {
    RoundRobin,
    Fair,
}

/// Knobs for one serve run; `stress --serve` fills this from flags.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Base seed of the job stream; job `i` derives `(seed, i)`.
    pub seed: u64,
    /// Total jobs submitted.
    pub jobs: usize,
    /// Fraction of jobs seeded with a fault (0.0–1.0). Of the faulty
    /// jobs, ~80% panic (caught class) and ~20% wedge (evicted class).
    pub fault_frac: f64,
    /// Pool worker threads (0 = auto).
    pub pool_workers: usize,
    pub sched: Sched,
    /// Install a one-shot `Fault::PanicPe` plan for this PE index
    /// instead of closure-level faults: exactly one job in the stream
    /// must fault, every other job must complete (the canary mode
    /// check_hermetic.sh drives).
    pub panic_pe: Option<usize>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self {
            seed: 0x5345525645,
            jobs: 1000,
            fault_frac: 0.10,
            pool_workers: 0,
            sched: Sched::RoundRobin,
            panic_pe: None,
        }
    }
}

/// Outcome classes a seeded job can be assigned up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    Healthy,
    Panic,
    Wedge,
}

/// What one serve run did; `mismatches` non-empty means the pool broke
/// an isolation or supervision promise.
#[derive(Debug)]
pub struct ServeSummary {
    pub jobs: usize,
    pub completed: usize,
    pub faulted: usize,
    pub evicted: usize,
    pub shed: usize,
    pub jobs_per_sec: f64,
    pub p50: Duration,
    pub p99: Duration,
    pub arenas_fresh: u64,
    pub arenas_recycled: u64,
    pub mismatches: Vec<String>,
}

impl ServeSummary {
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The wedge body: PE 0 waits on a flag no PE ever sets while the rest
/// park in the barrier behind it — deterministic on every attempt, so
/// the watchdog always has something to diagnose.
fn wedge_body(ctx: &ShmemCtx) {
    let flag = ctx.shmalloc::<u64>(1);
    ctx.local_fill(&flag, 0u64);
    ctx.barrier_all();
    if ctx.my_pe() == 0 {
        ctx.wait_until(&flag, 0, Cmp::Ge, 1);
    }
    ctx.barrier_all();
}

/// Classify job `i` of the stream. The split is deterministic in
/// (seed, i): faults spread evenly, with every 5th faulty job a wedge.
fn classify(d: &mut RngDraw, i: usize, opts: &ServeOpts) -> Expect {
    if opts.panic_pe.is_some() || opts.fault_frac <= 0.0 {
        return Expect::Healthy;
    }
    let cut = (opts.fault_frac.clamp(0.0, 1.0) * 1000.0) as u64;
    if d.below(1000) >= cut {
        return Expect::Healthy;
    }
    // ~20% of the faulty population wedges; the rest panic. Wedges are
    // far more expensive (a full scaled stall window each), so keep
    // them the minority while still exercising eviction under load.
    if i.is_multiple_of(5) {
        Expect::Wedge
    } else {
        Expect::Panic
    }
}

/// Run the open-loop serve load. Submission never waits for results:
/// jobs are pushed as fast as admission allows, backing off only on
/// `QueueFull` by the server's own `retry_after` hint.
pub fn serve(opts: &ServeOpts) -> ServeSummary {
    let server_cfg = ServerConfig {
        workers: opts.pool_workers,
        queue_depth: 64,
        // Wedges must be diagnosed in CI time: a short window is safe
        // because healthy gen-v4 programs at ≤8 PEs make progress at
        // microsecond scale, far inside any stall horizon.
        stall: Duration::from_millis(500),
        // A deliberate wedge reproduces on retry and each wedged
        // attempt strands its PE threads until process exit; one
        // attempt keeps the leak bounded (retry/backoff is covered by
        // the eviction regression test).
        max_attempts: 1,
        ..Default::default()
    };
    let server = match opts.sched {
        Sched::RoundRobin => Server::round_robin(server_cfg),
        Sched::Fair => Server::fair(server_cfg),
    };
    eprintln!(
        "serve: seed={:#018x} jobs={} fault_frac={} pool_workers={} (resolved {}) sched={:?}{}",
        opts.seed,
        opts.jobs,
        opts.fault_frac,
        opts.pool_workers,
        server.slots(),
        opts.sched,
        match opts.panic_pe {
            Some(pe) => format!(" panic_pe={pe}"),
            None => String::new(),
        }
    );
    if let Some(pe) = opts.panic_pe {
        let plan = tshmem::FaultPlan {
            seed: 0,
            faults: vec![tshmem::Fault::PanicPe { pe, after_ops: 8 }],
        };
        eprintln!("serve: installing one-shot {plan:?}");
        tshmem::fault::install(plan);
    }

    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(opts.jobs);
    for i in 0..opts.jobs {
        let mut d = RngDraw::new(opts.seed, i as u64);
        let expect = classify(&mut d, i, opts);
        let spec = match expect {
            Expect::Healthy | Expect::Panic => {
                // 2–8 PEs, fresh draw stream per job. A panic job runs
                // the same program but a chosen PE turns hostile at a
                // mid-program barrier.
                let npes = 2 + d.below(7) as usize;
                let prog = Arc::new(gen_program_v(&mut d, npes, GEN_V4));
                let cfg = build_cfg(&prog, None);
                if expect == Expect::Panic {
                    let victim = d.below(npes as u64) as usize;
                    JobSpec::new(cfg, move |ctx| {
                        ctx.barrier_all();
                        if ctx.my_pe() == victim {
                            panic!("seeded hostile tenant (job {i})");
                        }
                        run_on_ctx(&prog, ctx);
                    })
                } else {
                    JobSpec::new(cfg, move |ctx| run_on_ctx(&prog, ctx))
                }
            }
            // Wedges pin npes=2: the diagnosis quality is identical and
            // the stranded-thread cost per wedge is minimal.
            Expect::Wedge => JobSpec::new(
                RuntimeConfig::new(2)
                    .with_partition_bytes(256 * 1024)
                    .with_private_bytes(64 * 1024)
                    .with_temp_bytes(16 * 1024),
                wedge_body,
            ),
        };
        let spec = spec.with_tenant((i % 7) as u32);
        // Open loop with admission backpressure: on QueueFull honor the
        // server's retry hint (capped — this is a test harness, not a
        // patient client).
        let handle = loop {
            match server.submit(spec.clone()) {
                Ok(h) => break h,
                Err(tshmem::SubmitError::QueueFull { retry_after }) => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(20)));
                }
                Err(e) => panic!("serve: unexpected admission error: {e}"),
            }
        };
        handles.push((i, expect, handle));
    }

    let mut summary = ServeSummary {
        jobs: opts.jobs,
        completed: 0,
        faulted: 0,
        evicted: 0,
        shed: 0,
        jobs_per_sec: 0.0,
        p50: Duration::ZERO,
        p99: Duration::ZERO,
        arenas_fresh: 0,
        arenas_recycled: 0,
        mismatches: Vec::new(),
    };
    let mut latencies = Vec::with_capacity(opts.jobs);
    let mut panic_pe_faults = 0usize;
    for (i, expect, handle) in handles {
        let report = handle.wait();
        match &report.outcome {
            JobOutcome::Completed { .. } => summary.completed += 1,
            JobOutcome::Faulted { .. } => summary.faulted += 1,
            JobOutcome::Evicted { .. } => summary.evicted += 1,
            JobOutcome::Shed { .. } => summary.shed += 1,
        }
        if expect == Expect::Healthy {
            latencies.push(report.latency);
        }
        let verdict = match (expect, &report.outcome) {
            (Expect::Healthy, JobOutcome::Completed { .. }) => Ok(()),
            // In PanicPe canary mode exactly one healthy job is allowed
            // (required, checked below) to fault.
            (Expect::Healthy, JobOutcome::Faulted { .. }) if opts.panic_pe.is_some() => {
                panic_pe_faults += 1;
                Ok(())
            }
            (Expect::Panic, JobOutcome::Faulted { .. }) => Ok(()),
            (Expect::Wedge, JobOutcome::Evicted { diagnosis, .. }) => {
                if diagnosis.contains("per-PE stall diagnosis") {
                    Ok(())
                } else {
                    Err(format!("wedge diagnosis missing the per-PE report:\n{diagnosis}"))
                }
            }
            (e, o) => Err(format!("expected {e:?}, got {o:?}")),
        };
        if let Err(msg) = verdict {
            summary.mismatches.push(format!("job {i}: {msg}"));
        }
    }
    let wall = t0.elapsed();

    if opts.panic_pe.is_some() {
        tshmem::fault::clear();
        if panic_pe_faults != 1 {
            summary.mismatches.push(format!(
                "PanicPe canary: expected exactly 1 faulted job from the one-shot \
                 plan, saw {panic_pe_faults}"
            ));
        }
    }
    let stats = server.shutdown();
    summary.arenas_fresh = stats.arenas_fresh;
    summary.arenas_recycled = stats.arenas_recycled;
    summary.jobs_per_sec = opts.jobs as f64 / wall.as_secs_f64();
    latencies.sort_unstable();
    if !latencies.is_empty() {
        summary.p50 = latencies[latencies.len() / 2];
        summary.p99 = latencies[(latencies.len() * 99) / 100];
    }
    summary
}
