//! Sequential oracle: predicts the exact final state of a [`Program`].
//!
//! Because RMA phases obey the stripe-ownership discipline (PE `p` only
//! touches stripe `p` slots, on any copy), replaying each PE's op list
//! in program order — PEs in any order — produces the same state as any
//! real thread interleaving. Counters are folded commutatively, and
//! collectives are evaluated by their OpenSHMEM semantics.

use crate::program::{
    chain_payload, coll_base, coll_len, collect_nelems, AuxOp, CollKind, NbiOp, Program, RmaOp,
    Step, TeamKind, CHAIN_W, COLL_L, NCTRS, NSIG, SLOTS_PER_PE, STAT_SLOTS_PER_PE,
};

/// Predicted end-state, plus every value each PE's gets must observe (in
/// that PE's issue order).
pub struct Model {
    /// `heap[pe][slot]`: each PE's copy of the `data` array.
    pub heap: Vec<Vec<u64>>,
    /// `stat[pe][slot]`: each PE's static stripe array.
    pub stat: Vec<Vec<u64>>,
    /// `coll[pe][elem]`: each PE's copy of the collective scratch array.
    pub coll: Vec<Vec<u64>>,
    /// Final counter values (PE 0's copy).
    pub ctrs: Vec<u64>,
    /// Final lock-protected counter value.
    pub lock_ctr: u64,
    /// Final value of the `sig` token-ring cell (every PE's copy).
    pub sig: u64,
    /// Final value of the `ring` cswap cell (PE 0's copy).
    pub ring: u64,
    /// Final values of the `sigs` signal words (identical on every
    /// copy: each [`Step::SignalChain`] leaves `sigs[idx]` at its
    /// cumulative round count on all PEs).
    pub sigs: Vec<u64>,
    /// `chaind[pe][elem]`: each PE's copy of the `put_signal` payload
    /// array.
    pub chaind: Vec<Vec<u64>>,
    /// `gets[pe]`: expected results of PE `pe`'s recorded gets, in issue
    /// order.
    pub gets: Vec<Vec<u64>>,
}

fn reduce_fold(op: u8, a: u64, b: u64) -> u64 {
    match op {
        0 => a.wrapping_add(b),
        1 => a.min(b),
        2 => a.max(b),
        3 => a | b,
        _ => a ^ b,
    }
}

pub fn oracle(prog: &Program) -> Model {
    let n = prog.npes;
    let mut m = Model {
        heap: vec![vec![0u64; n * SLOTS_PER_PE]; n],
        stat: vec![vec![0u64; n * STAT_SLOTS_PER_PE]; n],
        coll: vec![vec![0u64; coll_len(prog)]; n],
        ctrs: vec![0u64; NCTRS],
        lock_ctr: 0,
        sig: 0,
        ring: 0,
        sigs: vec![0u64; NSIG],
        chaind: vec![vec![0u64; n * CHAIN_W]; n],
        gets: vec![Vec::new(); n],
    };
    for step in &prog.steps {
        match step {
            Step::Rma { ops, .. } => {
                for (me, list) in ops.iter().enumerate() {
                    let hs = me * SLOTS_PER_PE; // heap stripe base
                    let ss = me * STAT_SLOTS_PER_PE; // static stripe base
                    for op in list {
                        match op {
                            RmaOp::PutHeapElem { to, slot, val } => {
                                m.heap[*to][hs + slot] = *val;
                            }
                            RmaOp::PutHeapBulk { to, slot, vals } => {
                                m.heap[*to][hs + slot..hs + slot + vals.len()]
                                    .copy_from_slice(vals);
                            }
                            RmaOp::IputHeap { to, slot, tst, vals } => {
                                for (i, v) in vals.iter().enumerate() {
                                    m.heap[*to][hs + slot + i * tst] = *v;
                                }
                            }
                            RmaOp::GetHeapElem { from, slot } => {
                                let v = m.heap[*from][hs + slot];
                                m.gets[me].push(v);
                            }
                            RmaOp::GetHeapBulk { from, slot, n } => {
                                for i in 0..*n {
                                    let v = m.heap[*from][hs + slot + i];
                                    m.gets[me].push(v);
                                }
                            }
                            RmaOp::PutStatic { to, slot, vals } => {
                                m.stat[*to][ss + slot..ss + slot + vals.len()]
                                    .copy_from_slice(vals);
                            }
                            RmaOp::IputStatic { to, slot, tst, vals } => {
                                for (i, v) in vals.iter().enumerate() {
                                    m.stat[*to][ss + slot + i * tst] = *v;
                                }
                            }
                            RmaOp::GetStatic { from, slot, n } => {
                                for i in 0..*n {
                                    let v = m.stat[*from][ss + slot + i];
                                    m.gets[me].push(v);
                                }
                            }
                            RmaOp::IgetStatic { from, slot, sst, n } => {
                                for i in 0..*n {
                                    let v = m.stat[*from][ss + slot + i * sst];
                                    m.gets[me].push(v);
                                }
                            }
                            RmaOp::PutSymDynToStatic { to, slot, dslot, n } => {
                                for i in 0..*n {
                                    m.stat[*to][ss + slot + i] = m.heap[me][hs + dslot + i];
                                }
                            }
                            RmaOp::GetSymStaticToDyn { from, slot, dslot, n } => {
                                for i in 0..*n {
                                    m.heap[me][hs + dslot + i] = m.stat[*from][ss + slot + i];
                                }
                            }
                            RmaOp::CtrAdd { ctr, amount } => {
                                m.ctrs[*ctr] = m.ctrs[*ctr].wrapping_add(*amount);
                            }
                            RmaOp::PtrPut { to, slot, val } => {
                                m.heap[*to][hs + slot] = *val;
                            }
                            RmaOp::PtrGet { from, slot } => {
                                let v = m.heap[*from][hs + slot];
                                m.gets[me].push(v);
                            }
                        }
                    }
                }
            }
            Step::Coll { kind, set, idx, vals } => {
                let set = tshmem::ActiveSet::new(set.0, set.1, set.2);
                apply_coll(&mut m, prog, kind, set, *idx, vals);
            }
            Step::Lock { rounds } => {
                m.lock_ctr += *rounds as u64 * n as u64;
            }
            Step::SignalRing { rounds } => {
                // Each round passes the token once around the ring, so
                // every copy's cell ends at the cumulative round count.
                m.sig += *rounds as u64;
            }
            Step::CswapRing { rounds } => {
                // Every PE claims `rounds` tokens in rank order; the
                // cell advances once per claim.
                m.ring += *rounds as u64 * n as u64;
            }
            Step::HeapChurn { slots, refresh, round1, round2, .. } => {
                // The scratch array lives only within this step: model
                // each copy, replay both rounds (barrier-separated in
                // the executor, so sequential replay is exact), and
                // account for the churn between them.
                let total = n * slots;
                let mut aux = vec![vec![0u64; total]; n];
                let mut apply = |aux: &mut Vec<Vec<u64>>, round: &Vec<Vec<AuxOp>>| {
                    for (me, list) in round.iter().enumerate() {
                        let base = me * slots;
                        for op in list {
                            match op {
                                AuxOp::Put { to, slot, val } => aux[*to][base + slot] = *val,
                                AuxOp::PutBulk { to, slot, vals } => aux[*to]
                                    [base + slot..base + slot + vals.len()]
                                    .copy_from_slice(vals),
                                AuxOp::Get { from, slot } => {
                                    let v = aux[*from][base + slot];
                                    m.gets[me].push(v);
                                }
                            }
                        }
                    }
                };
                apply(&mut aux, round1);
                if *refresh {
                    // shfree + shmalloc + explicit re-zero.
                    aux = vec![vec![0u64; total]; n];
                } else {
                    // shrealloc grow: prefix preserved, tail zeroed.
                    for copy in &mut aux {
                        copy.resize(total + n, 0);
                    }
                }
                apply(&mut aux, round2);
                // The executor dumps each PE's full local copy into its
                // recorded gets before freeing.
                for (pe, copy) in aux.iter().enumerate() {
                    m.gets[pe].extend_from_slice(copy);
                }
            }
            Step::NbiTrain { ops, .. } => {
                // Sequential replay in issue order is exact for the same
                // reason as `Rma`: stripe ownership, plus `get_nbi`
                // flushes pending puts to its source PE before reading,
                // so a PE always observes its own prior writes.
                // `Fence`/`Quiet` change completion timing, never values.
                for (me, list) in ops.iter().enumerate() {
                    let hs = me * SLOTS_PER_PE;
                    let ss = me * STAT_SLOTS_PER_PE;
                    for op in list {
                        match op {
                            NbiOp::PutNbiHeap { to, slot, vals } => {
                                m.heap[*to][hs + slot..hs + slot + vals.len()]
                                    .copy_from_slice(vals);
                            }
                            NbiOp::PutNbiStatic { to, slot, vals } => {
                                m.stat[*to][ss + slot..ss + slot + vals.len()]
                                    .copy_from_slice(vals);
                            }
                            NbiOp::GetNbiHeap { from, slot, n } => {
                                for i in 0..*n {
                                    let v = m.heap[*from][hs + slot + i];
                                    m.gets[me].push(v);
                                }
                            }
                            NbiOp::GetNbiStatic { from, slot, n } => {
                                for i in 0..*n {
                                    let v = m.stat[*from][ss + slot + i];
                                    m.gets[me].push(v);
                                }
                            }
                            NbiOp::Fence | NbiOp::Quiet => {}
                        }
                    }
                }
            }
            Step::SignalChain { rounds, idx, .. } => {
                // Per round, every PE delivers its payload into its own
                // `chaind` stripe on the next PE and bumps `sigs[idx]`
                // there to the round target; the receiver's indexed wait
                // then admits the payload read. Works for n == 1 (each
                // PE self-signals).
                let base = m.sigs[*idx];
                for r in 0..*rounds {
                    for me in 0..n {
                        let prev = (me + n - 1) % n;
                        let payload = chain_payload(base, r, prev);
                        m.chaind[me][prev * CHAIN_W..(prev + 1) * CHAIN_W]
                            .copy_from_slice(&payload);
                        m.gets[me].extend_from_slice(&payload);
                    }
                }
                m.sigs[*idx] = base + *rounds as u64;
            }
            Step::TeamColl { kind, split, idx, vals } => {
                // The world team has stride 1, so a strided split is the
                // active set with the same triplet — and a team
                // collective is the same algorithm on that set.
                let set = tshmem::ActiveSet::new(split.0, split.1, split.2);
                match kind {
                    TeamKind::Bcast { root_rank } => {
                        apply_coll(
                            &mut m,
                            prog,
                            &CollKind::Bcast { root_rank: *root_rank },
                            set,
                            *idx,
                            vals,
                        );
                    }
                    TeamKind::Reduce { op } => {
                        apply_coll(&mut m, prog, &CollKind::Reduce { op: *op }, set, *idx, vals);
                    }
                    TeamKind::Fcollect => {
                        apply_coll(&mut m, prog, &CollKind::Fcollect, set, *idx, vals);
                    }
                    TeamKind::Collect => {
                        apply_coll(&mut m, prog, &CollKind::Collect, set, *idx, vals);
                    }
                    TeamKind::Alltoall { nelems } => {
                        let base = coll_base(prog, *idx);
                        let dest = base + COLL_L;
                        for (rank, pe) in set.iter().enumerate() {
                            m.coll[pe][base..base + COLL_L].copy_from_slice(&vals[rank]);
                        }
                        // Member rank j receives block j of every member
                        // i's source row at dest[i * nelems ..].
                        for (j, pe) in set.iter().enumerate() {
                            for (i, row) in vals.iter().enumerate().take(set.size) {
                                for k in 0..*nelems {
                                    m.coll[pe][dest + i * nelems + k] = row[j * nelems + k];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    m
}

/// Evaluate one triplet collective into the model — shared by
/// [`Step::Coll`] and the team-scoped kinds of [`Step::TeamColl`],
/// which must produce identical results on the same set.
fn apply_coll(
    m: &mut Model,
    prog: &Program,
    kind: &CollKind,
    set: tshmem::ActiveSet,
    idx: usize,
    vals: &[Vec<u64>],
) {
    let base = coll_base(prog, idx);
    let dest = base + COLL_L;
    // Every member publishes its contribution in its own copy's src
    // slots.
    for (rank, pe) in set.iter().enumerate() {
        m.coll[pe][base..base + COLL_L].copy_from_slice(&vals[rank]);
    }
    match kind {
        CollKind::Bcast { root_rank } => {
            // Per OpenSHMEM, the root's dest is not written.
            for (rank, pe) in set.iter().enumerate() {
                if rank != *root_rank {
                    m.coll[pe][dest..dest + COLL_L].copy_from_slice(&vals[*root_rank]);
                }
            }
        }
        CollKind::Reduce { op } => {
            let mut acc = vals[0].clone();
            for v in &vals[1..] {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a = reduce_fold(*op, *a, *b);
                }
            }
            for pe in set.iter() {
                m.coll[pe][dest..dest + COLL_L].copy_from_slice(&acc);
            }
        }
        CollKind::Fcollect => {
            for pe in set.iter() {
                for (rank, v) in vals.iter().enumerate() {
                    m.coll[pe][dest + rank * COLL_L..dest + (rank + 1) * COLL_L]
                        .copy_from_slice(v);
                }
            }
        }
        CollKind::Collect => {
            let mut cat = Vec::new();
            for (rank, v) in vals.iter().enumerate() {
                cat.extend_from_slice(&v[..collect_nelems(rank, idx)]);
            }
            for pe in set.iter() {
                m.coll[pe][dest..dest + cat.len()].copy_from_slice(&cat);
            }
        }
    }
}
