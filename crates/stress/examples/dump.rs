//! Print the step list of one generated stress program — the first
//! thing to look at when a `(seed, case, pes, gen)` replay stalls or
//! diverges, before reaching for the watchdog report:
//!
//! ```text
//! cargo run -p stress --example dump -- 0x52 2 4 4
//! cargo run -p stress --example dump -- 0x52 2 256 4 0   # coop, auto workers
//! ```
//!
//! The optional fifth argument is the coop worker count (0 = auto).
//! The dump resolves it with the same rule the backend applies and
//! bakes the concrete M into the replay hint, so pasting the hint on a
//! host with a different core count reproduces the identical run —
//! stall windows scale with oversubscription, which depends on M.

use stress::program::{gen_program_v, RngDraw, Step};
use stress::run::resolve_coop_workers;

fn main() {
    let a: Vec<String> = std::env::args().skip(1).collect();
    if a.len() != 4 && a.len() != 5 {
        eprintln!("usage: dump <hex-seed> <case> <pes> <gen> [workers]");
        std::process::exit(2);
    }
    let seed = u64::from_str_radix(a[0].trim_start_matches("0x"), 16).unwrap();
    let case: u64 = a[1].parse().unwrap();
    let pes: usize = a[2].parse().unwrap();
    let gen: u32 = a[3].parse().unwrap();
    let prog = gen_program_v(&mut RngDraw::new(seed, case), pes, gen);
    let workers = a.get(4).map(|w| resolve_coop_workers(w.parse().unwrap(), pes));
    println!("temp={}B algos={:?} steps={}", prog.temp_bytes, prog.algos, prog.steps.len());
    let engine = match workers {
        Some(m) => format!(" --engine coop --workers {m}"),
        None => String::new(),
    };
    println!(
        "replay: cargo run -p stress -- --seed {seed:#x} --case {case} --pes {pes} --gen {gen}{engine}"
    );
    for (i, s) in prog.steps.iter().enumerate() {
        let name = match s {
            Step::Rma { .. } => "Rma".into(),
            Step::Coll { kind, set, .. } => format!("Coll {kind:?} set={set:?}"),
            Step::Lock { rounds } => format!("Lock rounds={rounds}"),
            Step::SignalRing { rounds } => format!("SignalRing rounds={rounds}"),
            Step::CswapRing { rounds } => format!("CswapRing rounds={rounds}"),
            Step::HeapChurn { .. } => "HeapChurn".into(),
            Step::NbiTrain { .. } => "NbiTrain".into(),
            Step::SignalChain { rounds, idx, add } => {
                format!("SignalChain rounds={rounds} idx={idx} add={add}")
            }
            Step::TeamColl { kind, split, .. } => format!("TeamColl {kind:?} split={split:?}"),
        };
        println!("step {i}: {name}");
    }
}
