//! CLI-level regression tests for the replay binary, run against the
//! real compiled executable (`CARGO_BIN_EXE_stress`), so flag parsing
//! and the parse-time validation/auto-sizing rules are covered exactly
//! as a user invokes them — not through a reimplementation of argv.

use std::process::Command;

fn stress_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stress"))
}

/// `--engine coop` without `--workers` used to hand the backend a zero;
/// now parse_args resolves a sane M itself, names the flag in a hint,
/// and the run completes. A tiny 2-PE gen-1 case keeps this fast.
#[test]
fn coop_without_workers_auto_sizes_and_completes() {
    let out = stress_bin()
        .args(["--engine", "coop", "--seed", "0x7", "--case", "1", "--pes", "2", "--gen", "1"])
        .output()
        .expect("failed to spawn stress binary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "coop run without --workers failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The auto-size announcement must name the flag the user should
    // pass to pin the choice, and state the resolved worker count.
    assert!(
        stderr.contains("--workers") && stderr.contains("auto-sized the coop worker pool"),
        "auto-size hint missing from stderr:\n{stderr}"
    );
    // The replay hint must bake in the *resolved* M, never `--workers 0`.
    assert!(
        !stdout.contains("--workers 0") && !stderr.contains("--workers 0"),
        "replay hint leaked an unresolved --workers 0:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("completed"),
        "run did not report oracle-checked completion:\n{stdout}"
    );
}

/// An explicit `--workers M` must be respected verbatim: no auto-size
/// chatter, and the hint echoes the pinned M.
#[test]
fn coop_with_explicit_workers_is_not_overridden() {
    let out = stress_bin()
        .args([
            "--engine", "coop", "--workers", "2", "--seed", "0x7", "--case", "1", "--pes", "2",
            "--gen", "1",
        ])
        .output()
        .expect("failed to spawn stress binary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "pinned coop run failed:\n{stdout}\n{stderr}");
    assert!(
        !stderr.contains("auto-sized"),
        "explicit --workers 2 still triggered the auto-size path:\n{stderr}"
    );
}

/// The multichip odd-PE rejection is also parse-time validation; pin it
/// here so the error keeps naming the offending flag and value.
#[test]
fn multichip_rejects_odd_pe_count_at_parse_time() {
    let out = stress_bin()
        .args(["--engine", "multichip", "--pes", "3"])
        .output()
        .expect("failed to spawn stress binary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "odd multichip PE count was accepted");
    assert!(
        stderr.contains("--pes 3 is odd"),
        "rejection does not name the bad value:\n{stderr}"
    );
    // Parse-time means no program was generated before the rejection.
    assert!(!stderr.contains("seed="), "program generation ran before validation:\n{stderr}");
}
