//! Timed-engine deadlock canary: wedge a virtual-time job and assert
//! the desim scheduler's deadlock detector fires **the instant the
//! event queue drains**, with the attached [`tshmem::TimedWatch`]
//! rendering the same per-PE diagnosis the native watchdog produces.
//!
//! Under virtual time there is no wall clock to stall, so the
//! `JobWatch` approach cannot work; the scheduler itself is the
//! watchdog. The canary reuses the `set_blocking_protocol_sends` fault
//! hook (the PR-1 pre-fix send path) so the wedged PE's barrier traffic
//! takes the credit-blocked bounded-queue path of the timed engine, and
//! wedges PE 0 with a deliberately mismatched extra barrier: PE 0 parks
//! in the barrier recv forever while every other LP finishes.
//!
//! Own test binary: the fault flag is process-global.

use std::sync::Arc;

use tshmem::prelude::*;
use tshmem::runtime::launch_timed_watched;
use tshmem::TimedWatch;

#[test]
fn desim_watchdog_catches_timed_deadlock_and_names_the_parked_pe() {
    tshmem::fault::set_blocking_protocol_sends(true);
    let cfg = RuntimeConfig::new(4)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 16)
        .with_bounded_udn(1);
    let watch = Arc::new(TimedWatch::new());
    let result = launch_timed_watched(&cfg, &watch, |ctx| {
        ctx.barrier_all();
        // Deliberate bug: PE 0 joins a barrier no other PE runs. Its
        // extra invocation collides with the other PEs' finalize-time
        // ring barrier (both are each PE's second barrier), so the whole
        // job wedges mid-protocol — the virtual event queue drains with
        // every LP parked in a barrier recv.
        if ctx.my_pe() == 0 {
            ctx.barrier_dissemination_explicit(ctx.world());
        }
    });
    tshmem::fault::set_blocking_protocol_sends(false);

    let Err(report) = result else {
        panic!("mismatched barrier did not deadlock the timed engine");
    };
    assert!(
        report.contains("timed watchdog: virtual event queue drained with unfinished LPs parked"),
        "missing timed watchdog header:\n{report}"
    );
    assert!(report.contains("per-PE stall diagnosis (4 PEs)"), "missing diagnosis:\n{report}");
    // Every PE is parked in the barrier-queue recv and named with its
    // coop channel and virtual clock.
    for pe in 0..4 {
        assert!(report.contains(&format!("PE {pe}: recv(q0)")), "PE {pe} missing:\n{report}");
    }
    assert!(report.contains("parked on ch0 @"), "no parked channel/clock in:\n{report}");
    // Service contexts are probed separately, idle in their recv loops.
    assert!(report.contains("PE 0 svc: recv(q3)"), "service probe missing:\n{report}");
    assert!(report.contains("parked on ch3"), "service park missing:\n{report}");
    // Useful-work counters rendered (spins stay zero: parked, not spinning).
    assert!(report.contains("useful="), "no counters in:\n{report}");
    // The stored report is also available through the watch handle.
    assert_eq!(watch.stall_report().as_deref(), Some(report.as_str()));
}
