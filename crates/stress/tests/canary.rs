//! Watchdog canary: temporarily reintroduce the PR-1 dissemination-
//! barrier deadlock through the `tshmem::fault` hook and assert the
//! watchdog detects it, diagnoses every PE, and names the reproducing
//! seed.
//!
//! This lives in its own test binary: the fault flag is process-global,
//! and a genuinely deadlocked job leaks its PE threads (they are parked
//! in pre-fix blocking sends that no abort flag can reach) until the
//! process exits.

use std::time::Duration;

use stress::program::{gen_program, RngDraw};
use stress::run::{run_watched, Outcome};

/// Seeds whose generated programs chain enough dissemination barriers
/// that overlapping rounds form a cycle of full-queue senders once
/// sends stop draining (each verified 5/5 on an idle machine). The
/// deadlock needs genuinely concurrent PEs, so on a heavily loaded
/// machine any single attempt can slip through serialized — hence the
/// retry loop below.
const CANARY_SEEDS: [u64; 3] = [0x1, 0x3, 0x7];
const ATTEMPTS: usize = 4;

fn hint_for(seed: u64) -> String {
    // `--gen 1`: these seeds are pinned against the frozen V1 stream.
    format!("cargo run -p stress -- --seed {seed:#x} --pes 8 --depth 1 --gen 1 --canary")
}

#[test]
fn watchdog_catches_reintroduced_barrier_deadlock() {
    tshmem::fault::set_blocking_protocol_sends(true);
    let mut caught = None;
    'hunt: for _ in 0..ATTEMPTS {
        for seed in CANARY_SEEDS {
            let prog = gen_program(&mut RngDraw::new(seed, 0), 8);
            match run_watched(&prog, Some(1), Duration::from_secs(2), &hint_for(seed)) {
                Outcome::Stalled(report) => {
                    caught = Some((seed, report));
                    break 'hunt;
                }
                Outcome::Completed => continue,
            }
        }
    }
    tshmem::fault::set_blocking_protocol_sends(false);

    let Some((seed, report)) = caught else {
        panic!(
            "fault-injected dissemination barriers at queue depth 1 never deadlocked \
             across {ATTEMPTS} attempts × {} seeds; the reintroduced PR-1 bug was not caught",
            CANARY_SEEDS.len()
        );
    };

    // The diagnosis must name every PE and what it is blocked on.
    assert!(report.contains("per-PE stall diagnosis (8 PEs)"), "missing header:\n{report}");
    for pe in 0..8 {
        assert!(report.contains(&format!("PE {pe}:")), "missing PE {pe}:\n{report}");
    }
    // A send-cycle deadlock: at least one PE parked in a full-queue
    // send, with the barrier queue (q0) implicated.
    assert!(report.contains("(q0) [full]"), "no full-queue send in:\n{report}");
    // Queue occupancy and last-event columns rendered.
    assert!(report.contains("queue occupancy ["), "no occupancy in:\n{report}");
    assert!(report.contains("last event"), "no trace events in:\n{report}");
    // And it must name its own reproducer.
    assert!(report.contains("--canary"), "no replay hint in:\n{report}");
    assert!(report.contains(&format!("--seed {seed:#x}")), "no seed in:\n{report}");

    // With the fault flag restored, the same program completes and
    // verifies — proving the deadlock came from the injected fault, not
    // the program. (Same #[test] on purpose: the flag is process-global,
    // so a parallel test could otherwise observe it mid-canary.)
    let prog = gen_program(&mut RngDraw::new(seed, 0), 8);
    match run_watched(&prog, Some(1), Duration::from_secs(10), "n/a") {
        Outcome::Completed => {}
        Outcome::Stalled(report) => panic!("unexpected stall without fault:\n{report}"),
    }
}
