//! Livelock canary: poison a lock word so every PE's `set_lock` cswap
//! fails forever, and assert the watchdog's useful-work accounting
//! classifies the stall as a **livelock** and names the spinning PEs.
//!
//! This is exactly the failure mode the PR-2 watchdog was blind to: the
//! spinning PEs issue fabric operations continuously (failed cswaps,
//! `wait_pause` polls), so an "any fabric op = progress" signal never
//! fires. The useful/spin counter split makes the stall visible — ops
//! flat, spins climbing.
//!
//! Own test binary: the watchdog abort tears the job down by panicking
//! every PE at its next abort checkpoint, which is noisy enough to keep
//! isolated from the verification sweeps.

use std::time::Duration;

use stress::run::{watch_closure, Outcome};
use tshmem::prelude::*;

#[test]
fn useful_work_watchdog_classifies_lock_pingpong_as_livelock() {
    let cfg = RuntimeConfig::new(4)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 16);
    let outcome = watch_closure(&cfg, Duration::from_secs(2), "poisoned-lock livelock", |ctx| {
        let lock = ctx.shmalloc::<i64>(1);
        ctx.local_fill(&lock, 0i64);
        ctx.barrier_all();
        // Deliberate bug: PE 0 scribbles a garbage owner word into the
        // lock, so no PE's cswap(0 -> me+1) can ever succeed.
        if ctx.my_pe() == 0 {
            ctx.p(&lock, 0, i64::MAX, 0);
        }
        ctx.barrier_all();
        ctx.set_lock(&lock);
        ctx.clear_lock(&lock);
    });

    let Outcome::Stalled(report) = outcome else {
        panic!("poisoned lock did not stall the job");
    };
    // The useful/spin split must call this a livelock, not a deadlock:
    // every PE keeps issuing (failing) fabric ops.
    assert!(report.contains("classification: livelock"), "not classified livelock:\n{report}");
    // Every PE is parked in the lock acquisition spin and named.
    assert!(report.contains("per-PE stall diagnosis (4 PEs)"), "missing header:\n{report}");
    assert!(report.contains("lock-wait@"), "no lock-wait state in:\n{report}");
    assert!(
        report.contains("livelock suspects (spinning, no useful work in window):"),
        "no suspects line in:\n{report}"
    );
    for pe in 0..4 {
        assert!(
            report.contains(&format!("PE {pe} (lock-wait@")),
            "PE {pe} not named a suspect in:\n{report}"
        );
    }
    // In-window deltas rendered: zero useful work, nonzero spins.
    assert!(report.contains("(+0 useful / +"), "no window deltas in:\n{report}");
}
