//! Eager/lazy nbi completion equivalence: the same seeded gen-4
//! programs must reach the same oracle-verified final state — and the
//! same deterministic `Stats` — whether non-blocking operations
//! complete at issue (`fault::set_nbi_eager(true)`) or at the next
//! completion point (the shipping default). The knob routes through
//! `drain_pending` on the same code path, so a divergence means the
//! deferred plumbing (staging buffers, issue-order replay, temp
//! bump-allocation) changed observable semantics.
//!
//! One `#[test]` on purpose: the eager knob is process-global, so the
//! modes must never interleave across test threads.

use std::time::Duration;

use stress::program::{gen_program_v, RngDraw, GEN_LATEST};
use stress::run::{build_cfg, run_coop, run_multichip, run_on_ctx, run_timed, run_watched, Outcome};
use tshmem::{fault, Stats};

/// Run one program natively in the given mode and collect per-PE stats.
fn native_stats(prog: &stress::program::Program, eager: bool) -> Vec<Stats> {
    fault::set_nbi_eager(eager);
    let cfg = build_cfg(prog, None);
    let out = tshmem::launch(&cfg, |ctx| {
        run_on_ctx(prog, ctx);
        ctx.stats()
    });
    fault::set_nbi_eager(false);
    out
}

/// Spin-retry counts (cswap loops, lock claims) are timing-dependent;
/// everything else in `Stats` is deterministic per program.
fn normalized(mut s: Stats) -> Stats {
    s.atomics = 0;
    s
}

#[test]
fn eager_and_lazy_nbi_completion_are_equivalent() {
    // --- Native: full per-PE Stats must match between modes (counters
    // are bumped at issue, and draining reuses the blocking paths). ---
    for case in 0..4u64 {
        let prog = gen_program_v(&mut RngDraw::new(0x4eb1, case), 4, GEN_LATEST);
        let lazy = native_stats(&prog, false);
        let eager = native_stats(&prog, true);
        assert_eq!(lazy.len(), eager.len());
        for (pe, (l, e)) in lazy.iter().zip(&eager).enumerate() {
            assert_eq!(
                normalized(*l),
                normalized(*e),
                "case {case} PE {pe}: eager and lazy nbi modes produced different op counts"
            );
        }
    }

    // --- All four engines: both modes must converge to the oracle
    // (run_on_ctx asserts every PE's view against it). ---
    for eager in [false, true] {
        fault::set_nbi_eager(eager);
        let mode = if eager { "eager" } else { "lazy" };
        for case in 4..7u64 {
            let prog = gen_program_v(&mut RngDraw::new(0x4eb1, case), 4, GEN_LATEST);
            let hint = format!("--seed 0x4eb1 --case {case} --pes 4 --gen {GEN_LATEST}");
            let runs: [(&str, Outcome); 4] = [
                ("native", run_watched(&prog, None, Duration::from_secs(20), &hint)),
                ("timed", run_timed(&prog, None, &hint)),
                ("multichip", run_multichip(&prog, None, &hint)),
                ("coop", run_coop(&prog, None, 2, Duration::from_secs(20), &hint)),
            ];
            for (engine, outcome) in runs {
                match outcome {
                    Outcome::Completed => {}
                    Outcome::Stalled(report) => {
                        fault::set_nbi_eager(false);
                        panic!("{engine} case {case} stalled in {mode} mode:\n{report}")
                    }
                }
            }
        }
        fault::set_nbi_eager(false);
    }
}
