//! The faulted acceptance sweep: the same seeded programs the smoke
//! sweep runs, each re-run under a seeded random [`FaultPlan`] drawn
//! from [`fault_plan_seed`]`(seed, case)` — a derivation *outside* the
//! frozen generator draw streams, so the programs are byte-identical to
//! the unfaulted sweep's and every run here is replayable with
//!
//! ```text
//! cargo run -p stress -- --seed <seed> --case <case> --pes <n> \
//!     --depth 2 --fault-plan <plan seed>
//! ```
//!
//! One `#[test]` on purpose: the installed fault plan is process-global
//! state, so faulted runs must never share a binary with parallel
//! tests (the same rule `fault_canary.rs` documents). Seeded plans draw
//! only tolerated-class faults, so every run must still converge to the
//! sequential oracle — a stall here is a liveness bug in the library,
//! not an expected fault outcome.

use std::time::Duration;

use stress::program::{fault_plan_seed, gen_program_v, RngDraw, GEN_LATEST};
use stress::run::{run_watched, Outcome};
use substrate::proptest_mini as pt;
use tshmem::fault;
use tshmem::FaultPlan;

#[test]
fn smoke_seeds_survive_seeded_fault_plans() {
    // Same suite seed the smoke sweep uses, so these are the same
    // programs `tests/smoke.rs` just proved correct fault-free.
    let seed = pt::Config::default().seed;
    for npes in [2usize, 4, 8] {
        for case in 0..3u64 {
            let prog = gen_program_v(&mut RngDraw::new(seed, case), npes, GEN_LATEST);
            let plan_seed = fault_plan_seed(seed, case);
            let plan = FaultPlan::from_seed(plan_seed, npes);
            let desc = plan.describe();
            fault::install(plan);
            let hint = format!(
                "cargo run -p stress -- --seed {seed:#x} --case {case} --pes {npes} \
                 --depth 2 --gen {GEN_LATEST} --fault-plan {plan_seed:#x}"
            );
            let outcome = run_watched(&prog, Some(2), Duration::from_secs(20), &hint);
            fault::clear();
            match outcome {
                Outcome::Completed => {}
                Outcome::Stalled(report) => {
                    panic!("case {case} on {npes} PEs stalled under tolerated {desc}:\n{report}")
                }
            }
        }
    }
}

/// The derivation is pinned: if `fault_plan_seed` changed, every
/// `--fault-plan` hint ever printed by this sweep would replay a
/// different plan.
#[test]
fn fault_plan_seed_derivation_is_stable() {
    let a = fault_plan_seed(0x1234, 0);
    let b = fault_plan_seed(0x1234, 1);
    let c = fault_plan_seed(0x1235, 0);
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_eq!(a, fault_plan_seed(0x1234, 0));
    // Distinct plans for adjacent cases (the mix spreads case bits).
    assert_ne!(
        FaultPlan::from_seed(a, 4).faults,
        FaultPlan::from_seed(b, 4).faults
    );
}
