//! Fault-injection plane canaries: a stalled service handler is
//! attributed to the **handler** (not its clients), and seeded fault
//! plans of the tolerated class converge to the oracle on both engines.
//!
//! One `#[test]` on purpose: the installed fault plan is process-global
//! state, so the stall canary and the tolerance matrix must run
//! sequentially in one binary.

use std::time::Duration;

use stress::program::{gen_program_v, RngDraw, GEN_LATEST};
use stress::run::{run_coop, run_multichip, run_timed, run_watched, watch_closure, Outcome};
use tshmem::fault::{self, Fault, FaultPlan};
use tshmem::prelude::*;

fn stalled_handler_report() -> String {
    // Stall every service request on PE 1 for 60 virtual/real seconds —
    // far past the 2 s watchdog window.
    fault::install(FaultPlan {
        seed: 0,
        faults: vec![Fault::StallServiceHandler { pe: 1, requests: 1000, micros: 60_000_000 }],
    });
    let cfg = RuntimeConfig::new(4)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 16);
    let outcome = watch_closure(&cfg, Duration::from_secs(2), "stalled service handler", |ctx| {
        let statv = ctx.static_sym::<u64>(4);
        ctx.local_fill(&statv, 0u64);
        ctx.barrier_all();
        // A static-segment put to another PE redirects through that
        // PE's interrupt-service context — the stalled handler.
        if ctx.my_pe() == 0 {
            ctx.put(&statv, 0, &[7u64, 8, 9], 1);
        }
        ctx.barrier_all();
    });
    fault::clear();
    match outcome {
        Outcome::Stalled(report) => report,
        Outcome::Completed => panic!("stalled service handler did not stall the job"),
    }
}

#[test]
fn service_handler_stall_is_attributed_and_seeded_plans_are_tolerated() {
    // --- Canary: the stall is pinned on PE 1's *handler*, not on the
    // clients parked in their reply waits. ---
    let report = stalled_handler_report();
    assert!(
        report.contains("PE 1 svc: handler(sput from PE 0)"),
        "handler not attributed in:\n{report}"
    );
    // The client is visibly parked waiting for the handler's reply.
    assert!(report.contains("PE 0: recv(q2)"), "client wait not shown in:\n{report}");
    // A sleeping handler neither works nor spins: deadlock class.
    assert!(report.contains("classification: deadlock"), "not classified deadlock:\n{report}");
    // The report names the injected fault, so the stall is attributable
    // to the plan rather than a library bug.
    assert!(report.contains("StallServiceHandler(PE 1"), "fault plan not named in:\n{report}");

    // --- Tolerance matrix: seeded plans draw only the tolerated fault
    // kinds; every such plan must converge to the oracle on all four
    // engines (or be caught — never hang the runner). The coop rows run
    // 4 PEs on 2 workers, so every injected delay also exercises the
    // gate-release-around-sleep path. ---
    for plan_seed in [0x11u64, 0x21, 0x31] {
        for engine in ["native", "timed", "multichip", "coop"] {
            let plan = FaultPlan::from_seed(plan_seed, 4);
            let desc = plan.describe();
            fault::install(plan);
            let prog = gen_program_v(&mut RngDraw::new(0x5, 0), 4, GEN_LATEST);
            let hint = format!("--fault-plan {plan_seed:#x} --engine {engine}");
            let outcome = match engine {
                "native" => run_watched(&prog, Some(2), Duration::from_secs(20), &hint),
                "timed" => run_timed(&prog, Some(2), &hint),
                "coop" => run_coop(&prog, Some(2), 2, Duration::from_secs(20), &hint),
                _ => run_multichip(&prog, Some(2), &hint),
            };
            fault::clear();
            match outcome {
                Outcome::Completed => {}
                Outcome::Stalled(report) => {
                    panic!("{engine} run under tolerated {desc} stalled:\n{report}")
                }
            }
        }
    }

    // --- DelayNbiCompletion is tolerated by construction: stretching
    // the gap between nbi issue and completion must never change the
    // oracle-checked final state or wedge any engine (the drain path
    // reuses the blocking protocol, so coop gates release and the
    // watchdog still sees useful ops). Hand-built plan (not seeded):
    // delaying every 2nd completion maximizes in-flight reordering
    // pressure on the gen-4 nbi trains. ---
    for engine in ["native", "timed", "multichip", "coop"] {
        fault::install(FaultPlan {
            seed: 0,
            faults: vec![Fault::DelayNbiCompletion { every: 2, micros: 300 }],
        });
        let prog = gen_program_v(&mut RngDraw::new(0x53, 1), 4, GEN_LATEST);
        let hint = format!("--engine {engine} (hand-built DelayNbiCompletion plan)");
        let outcome = match engine {
            "native" => run_watched(&prog, Some(2), Duration::from_secs(20), &hint),
            "timed" => run_timed(&prog, Some(2), &hint),
            "coop" => run_coop(&prog, Some(2), 2, Duration::from_secs(20), &hint),
            _ => run_multichip(&prog, Some(2), &hint),
        };
        fault::clear();
        match outcome {
            Outcome::Completed => {}
            Outcome::Stalled(report) => {
                panic!("{engine} run under DelayNbiCompletion stalled:\n{report}")
            }
        }
    }
}
