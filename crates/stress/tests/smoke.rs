//! The acceptance sweep: ≥64 seeded programs across PE counts
//! {2, 3, 4, 8} × UDN queue depths {1, 2, 8}, each run under the stall
//! watchdog and verified against the sequential oracle.
//!
//! Failures shrink via `substrate::proptest_mini` and report
//! `seed=… case=…`; replay with
//! `cargo run -p stress -- --seed <seed> --case <case> --pes <n> --depth <d>`.

use std::time::Duration;

use stress::program::{gen_program_v, ProgramStrategy, RngDraw, GEN_LATEST, GEN_V1};
use stress::run::{run_watched, Outcome};
use substrate::proptest_mini as pt;

fn sweep(npes: usize) {
    for depth in [1usize, 2, 8] {
        // Shrink candidates that stall cost a full watchdog window each,
        // so keep the shrink budget modest.
        let cfg = pt::Config { max_shrink_iters: 48, ..pt::Config::with_cases(6) };
        let seed = cfg.seed;
        pt::check(cfg, ProgramStrategy { npes, version: GEN_LATEST }, |prog| {
            let hint = format!(
                "cargo run -p stress -- --seed {seed:#x} --case <case reported above> \
                 --pes {npes} --depth {depth} --gen {GEN_LATEST}"
            );
            match run_watched(&prog, Some(depth), Duration::from_secs(10), &hint) {
                Outcome::Completed => {}
                Outcome::Stalled(report) => panic!("{report}"),
            }
        });
    }
}

#[test]
fn sweep_2_pes() {
    sweep(2);
}

#[test]
fn sweep_3_pes() {
    sweep(3);
}

#[test]
fn sweep_4_pes() {
    sweep(4);
}

#[test]
fn sweep_8_pes() {
    sweep(8);
}

/// Both churn modes of the V3 [`Step::HeapChurn`] vocabulary —
/// shfree+shmalloc refresh and shrealloc grow — must run under
/// concurrent RMA and verify against the oracle on the native *and*
/// timed engines. The seeds are found by scanning the frozen V3 stream,
/// so the programs are stable without pinning magic numbers here.
#[test]
fn heap_churn_both_modes_verified_on_both_engines() {
    use stress::program::Step;
    use stress::run::run_timed;
    let mut need_refresh = true;
    let mut need_grow = true;
    let mut seed = 0u64;
    while need_refresh || need_grow {
        seed += 1;
        assert!(seed < 10_000, "no HeapChurn programs in the first 10k seeds");
        let prog = gen_program_v(&mut RngDraw::new(seed, 0), 4, GEN_LATEST);
        let (mut has_refresh, mut has_grow) = (false, false);
        for s in &prog.steps {
            if let Step::HeapChurn { refresh, .. } = s {
                if *refresh {
                    has_refresh = true;
                } else {
                    has_grow = true;
                }
            }
        }
        if !((has_refresh && need_refresh) || (has_grow && need_grow)) {
            continue;
        }
        need_refresh &= !has_refresh;
        need_grow &= !has_grow;
        let hint = format!(
            "cargo run -p stress -- --seed {seed:#x} --case 0 --pes 4 --depth 2 \
             --gen {GEN_LATEST}"
        );
        match run_watched(&prog, Some(2), Duration::from_secs(10), &hint) {
            Outcome::Completed => {}
            Outcome::Stalled(report) => panic!("{report}"),
        }
        match run_timed(&prog, Some(2), &hint) {
            Outcome::Completed => {}
            Outcome::Stalled(report) => panic!("{report}"),
        }
    }
}

/// The property harness's `(seed, case)` stream and the replay binary's
/// `RngDraw` stream must generate byte-identical programs — under every
/// generator version — or the replay hint printed on failure would
/// reproduce a different run.
#[test]
fn replay_draws_match_harness_draws() {
    for version in [GEN_V1, GEN_LATEST] {
        for npes in [2usize, 5, 8] {
            for case in 0..4u64 {
                let seed = 0xDEAD_BEEF_0042_1337u64;
                let via_harness = {
                    use std::cell::RefCell;
                    let captured = RefCell::new(String::new());
                    pt::check(
                        pt::Config { cases: 1, seed: seed.wrapping_add(case), max_shrink_iters: 0 },
                        ProgramStrategy { npes, version },
                        |prog| {
                            *captured.borrow_mut() = format!("{prog:?}");
                        },
                    );
                    captured.into_inner()
                };
                let via_replay = {
                    let prog = gen_program_v(
                        &mut RngDraw::new(seed.wrapping_add(case), 0),
                        npes,
                        version,
                    );
                    format!("{prog:?}")
                };
                assert_eq!(
                    via_harness, via_replay,
                    "draw streams diverged (npes {npes}, gen {version})"
                );
            }
        }
    }
}
