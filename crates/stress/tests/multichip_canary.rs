//! Multichip liveness canaries: the drained-queue watchdog diagnoses a
//! mismatched cross-chip barrier with per-chip PE labels, and injected
//! mPIPE link faults are *caught* — corruption and replay by the
//! receiving link's CRC/sequence checks (panics naming the link), a
//! dropped control frame by the watchdog (report naming the installed
//! fault).
//!
//! One `#[test]` on purpose: fault plans are process-global state, so
//! the phases must run sequentially in one binary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use tshmem::fault::{self, Fault, FaultPlan};
use tshmem::prelude::*;
use tshmem::runtime::{launch_multichip, launch_multichip_watched};
use tshmem::TimedWatch;

fn cfg(pes_per_chip: usize) -> RuntimeConfig {
    RuntimeConfig::new(pes_per_chip)
        .with_partition_bytes(1 << 20)
        .with_private_bytes(1 << 14)
}

/// A small job whose first fabric activity crosses the chip boundary.
fn cross_chip_job(ctx: &ShmemCtx) {
    let v = ctx.shmalloc::<u64>(16);
    ctx.local_fill(&v, 0u64);
    ctx.barrier_all();
    if ctx.my_pe() == 0 {
        ctx.put(&v, 0, &[1u64, 2, 3, 4], ctx.n_pes() - 1);
    }
    ctx.barrier_all();
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string panic payload")
    }
}

#[test]
fn link_faults_are_caught_and_cross_chip_stalls_carry_chip_labels() {
    // --- Corrupt: the receiving mPIPE's CRC check panics, naming the
    // link, the frame, and both checksums. ---
    fault::install(FaultPlan {
        seed: 0,
        faults: vec![Fault::CorruptLinkPacket { nth: 1 }],
    });
    let payload = catch_unwind(AssertUnwindSafe(|| {
        launch_multichip(&cfg(2), 2, cross_chip_job);
    }))
    .expect_err("corrupted link frame must be caught");
    fault::clear();
    let msg = panic_text(payload);
    assert!(msg.contains("mPIPE link chip"), "link not named in: {msg}");
    assert!(msg.contains("CRC mismatch on frame"), "not a CRC catch: {msg}");

    // --- Duplicate: the replayed frame trips the sequence check. ---
    fault::install(FaultPlan {
        seed: 0,
        faults: vec![Fault::DuplicateLinkPacket { nth: 1 }],
    });
    let payload = catch_unwind(AssertUnwindSafe(|| {
        launch_multichip(&cfg(2), 2, cross_chip_job);
    }))
    .expect_err("replayed link frame must be caught");
    fault::clear();
    let msg = panic_text(payload);
    assert!(msg.contains("mPIPE link chip"), "link not named in: {msg}");
    assert!(msg.contains("replayed frame"), "not a replay catch: {msg}");
    assert!(msg.contains("duplicate delivery"), "cause not spelled out: {msg}");

    // --- Drop: the first cross-chip frame is barrier protocol traffic;
    // dropping it wedges the receiver, the virtual event queue drains,
    // and the watchdog report names the installed fault. Runs twice:
    // virtual time makes the full diagnosis replay byte-identically. ---
    let drop_report = || {
        fault::install(FaultPlan {
            seed: 0,
            faults: vec![Fault::DropLinkPacket { nth: 1 }],
        });
        let watch = Arc::new(TimedWatch::new());
        let result = launch_multichip_watched(&cfg(2), 2, &watch, cross_chip_job);
        fault::clear();
        match result {
            Ok(_) => panic!("dropped link frame was not caught"),
            Err(report) => report,
        }
    };
    let report = drop_report();
    assert!(
        report.contains("virtual event queue drained"),
        "watchdog header missing:\n{report}"
    );
    assert!(
        report.contains("per-PE stall diagnosis (4 PEs):"),
        "per-PE section missing:\n{report}"
    );
    assert!(
        report.contains("(chip 0)") && report.contains("(chip 1)"),
        "chip labels missing:\n{report}"
    );
    assert!(
        report.contains("active fault plan") && report.contains("DropLinkPacket(frame 1)"),
        "installed fault not named:\n{report}"
    );
    assert_eq!(report, drop_report(), "faulted multichip diagnosis must replay identically");

    // --- Mismatched cross-chip barrier, no faults installed: PE 4 (on
    // chip 1) skips the closing barrier; the diagnosis labels stalled
    // PEs on both chips and shows the bailed PE as finished. ---
    let watch = Arc::new(TimedWatch::new());
    let report = match launch_multichip_watched(&cfg(3), 2, &watch, |ctx| {
        ctx.barrier_all();
        if ctx.my_pe() != 4 {
            ctx.barrier_all(); // PE 4 bails out instead
        }
    }) {
        Ok(_) => panic!("mismatched cross-chip barrier must be caught"),
        Err(report) => report,
    };
    assert!(
        report.contains("per-PE stall diagnosis (6 PEs):"),
        "per-PE section missing:\n{report}"
    );
    assert!(
        report.contains("PE 0 (chip 0)") && report.contains("PE 5 (chip 1)"),
        "stalled PEs not labeled per chip:\n{report}"
    );
    assert!(
        report.contains("PE 4 (chip 1)") && report.contains("finished"),
        "bailed PE not shown finished:\n{report}"
    );
    assert_eq!(watch.stall_report().as_deref(), Some(report.as_str()));
}
