//! Hand-built stress scenarios for specific historical bug classes.

use std::time::Duration;

use stress::program::{CollKind, Program, Step, COLL_L};
use stress::run::{run_timed, run_watched, Outcome};

fn vals_for(size: usize, salt: u64) -> Vec<Vec<u64>> {
    (0..size)
        .map(|r| (0..COLL_L).map(|i| salt << 32 | (r as u64) << 16 | i as u64).collect())
        .collect()
}

/// Two disjoint active sets (evens and odds) run collect/fcollect
/// trains *concurrently*: the odds skip the evens' steps and start their
/// own collectives immediately, so both sets' offset-scan and gather
/// messages interleave on the same demux queues. Before collective
/// idents were made collision-free per (set, invocation), a member of
/// one set could consume the other set's same-offset message and
/// scatter wrong data — this program is the pinning regression for that
/// bleed.
#[test]
fn disjoint_set_collects_interleave() {
    let npes = 8;
    let evens = (0usize, 1u32, 4usize); // PEs 0,2,4,6
    let odds = (1usize, 1u32, 4usize); // PEs 1,3,5,7
    let mut steps = Vec::new();
    let mut idx = 0;
    // Several rounds of adjacent disjoint-set collectives; no barrier
    // between them, so the two sets run fully out of phase.
    for round in 0..4u64 {
        for (set, salt) in [(evens, round * 2), (odds, round * 2 + 1)] {
            let kind = if round % 2 == 0 { CollKind::Collect } else { CollKind::Fcollect };
            steps.push(Step::Coll { kind, set, idx, vals: vals_for(set.2, salt) });
            idx += 1;
        }
    }
    let prog = Program { npes, temp_bytes: 64, algos: (3, 0, 0), steps };
    for depth in [1usize, 8] {
        match run_watched(&prog, Some(depth), Duration::from_secs(10), "scenario: disjoint collects")
        {
            Outcome::Completed => {}
            Outcome::Stalled(report) => panic!("depth {depth}:\n{report}"),
        }
    }
}

/// Same shape, but the two sets *overlap* on PE 0 (world + evens):
/// overlapping membership forces PE 0 to order both collectives while
/// the other members race ahead, exercising the stash-matching path.
#[test]
fn overlapping_set_collectives() {
    let npes = 8;
    let world = (0usize, 0u32, 8usize);
    let evens = (0usize, 1u32, 4usize);
    let mut steps = Vec::new();
    let mut idx = 0;
    for round in 0..3u64 {
        steps.push(Step::Coll {
            kind: CollKind::Fcollect,
            set: world,
            idx,
            vals: vals_for(world.2, round * 2),
        });
        idx += 1;
        steps.push(Step::Coll {
            kind: CollKind::Collect,
            set: evens,
            idx,
            vals: vals_for(evens.2, round * 2 + 1),
        });
        idx += 1;
    }
    let prog = Program { npes, temp_bytes: 64, algos: (0, 0, 0), steps };
    match run_watched(&prog, Some(1), Duration::from_secs(10), "scenario: overlapping collects") {
        Outcome::Completed => {}
        Outcome::Stalled(report) => panic!("{report}"),
    }
}

/// Cross-engine fence stress for collect's gather stage. The gather
/// publishes each member's contribution with a `put_sym` of the data
/// followed by a flag store; a receiver that observes the flag must also
/// observe the data (the fence between them is the contract). The two
/// engines order those stores completely differently — native issues
/// real stores through the demux threads and relies on the fabric fence,
/// the timed engine serializes them in virtual time — so the same
/// collect train must verify on both. The per-PE result check inside
/// `run_on_ctx` is the oracle: a flag outrunning its data scatters stale
/// bytes and fails verification.
#[test]
fn collect_gather_fence_holds_on_both_engines() {
    let npes = 8;
    let world = (0usize, 0u32, 8usize);
    let evens = (0usize, 1u32, 4usize);
    let mut steps = Vec::new();
    let mut idx = 0;
    // A dense train of back-to-back gathers with no intervening barrier:
    // each round alternates Collect (offset-scan then gather) and
    // Fcollect (gather only) on world and on a subset, so flag/data
    // pairs from adjacent invocations are in flight simultaneously.
    for round in 0..4u64 {
        steps.push(Step::Coll {
            kind: if round % 2 == 0 { CollKind::Collect } else { CollKind::Fcollect },
            set: world,
            idx,
            vals: vals_for(world.2, round * 2),
        });
        idx += 1;
        steps.push(Step::Coll {
            kind: if round % 2 == 0 { CollKind::Fcollect } else { CollKind::Collect },
            set: evens,
            idx,
            vals: vals_for(evens.2, round * 2 + 1),
        });
        idx += 1;
    }
    let prog = Program { npes, temp_bytes: 64, algos: (3, 2, 1), steps };

    // Native engine: both a depth-1 bottleneck (every gather message
    // waits for credit, maximizing reordering windows) and a deep queue.
    for depth in [1usize, 8] {
        match run_watched(&prog, Some(depth), Duration::from_secs(10), "scenario: collect fence") {
            Outcome::Completed => {}
            Outcome::Stalled(report) => panic!("native depth {depth}:\n{report}"),
        }
    }
    // Timed engine: bounded and unbounded virtual-time schedules.
    for depth in [Some(1usize), None] {
        match run_timed(&prog, depth, "scenario: collect fence (timed)") {
            Outcome::Completed => {}
            Outcome::Stalled(report) => panic!("timed depth {depth:?}:\n{report}"),
        }
    }
}
