//! Server supervision: a wedged tenant is diagnosed with the per-PE
//! stall report, evicted within its stall window, retried with backoff,
//! and given up on after the policy limit — without damaging the pool.
//!
//! Own test binary: phase 2 flips the process-global
//! `BlockingProtocolSends` fault flag, and a genuinely deadlocked
//! attempt leaks PE threads parked in pre-fix blocking sends until
//! process exit (same rule as the stress watchdog canary).

use std::time::{Duration, Instant};

use stress::program::{gen_program, RngDraw};
use stress::{build_cfg, run_on_ctx};
use tshmem::prelude::*;
use tshmem::{JobOutcome, JobSpec, Server, ServerConfig};

fn wedge_cfg(npes: usize) -> RuntimeConfig {
    RuntimeConfig::new(npes)
        .with_partition_bytes(256 * 1024)
        .with_private_bytes(64 * 1024)
        .with_temp_bytes(16 * 1024)
}

/// A deterministic wedge: PE 0 waits on a flag no PE ever sets while
/// the rest park in the barrier behind it. Every launch attempt wedges
/// the same way, so eviction, backoff, and the give-up path all fire.
fn wedged_spec(npes: usize) -> JobSpec {
    JobSpec::new(wedge_cfg(npes), |ctx| {
        let flag = ctx.shmalloc::<u64>(1);
        ctx.local_fill(&flag, 0u64);
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            ctx.wait_until(&flag, 0, Cmp::Ge, 1);
        }
        ctx.barrier_all();
    })
}

#[test]
fn wedged_job_is_diagnosed_evicted_retried_and_given_up() {
    let stall = Duration::from_millis(300);
    let backoff = Duration::from_millis(50);
    let server = Server::round_robin(ServerConfig {
        workers: 4,
        stall,
        max_attempts: 2,
        backoff,
        ..Default::default()
    });

    // ---- Phase 1: deterministic wedge → evict, retry, give up. ----
    let t0 = Instant::now();
    let report = server.submit(wedged_spec(4)).expect("admitted").wait();
    let elapsed = t0.elapsed();
    match &report.outcome {
        JobOutcome::Evicted { attempts, diagnosis } => {
            assert_eq!(*attempts, 2, "policy grants exactly one retry");
            assert!(
                diagnosis.contains("per-PE stall diagnosis (4 PEs)"),
                "eviction must attach the per-PE stall report:\n{diagnosis}"
            );
            assert!(
                diagnosis.contains("classification:"),
                "eviction must classify the stall:\n{diagnosis}"
            );
            // PE 0 spins in wait_until with no useful work — the
            // livelock-suspect machinery should finger it.
            assert!(
                diagnosis.contains("PE 0"),
                "diagnosis must cover the wedged PE:\n{diagnosis}"
            );
        }
        other => panic!("deterministic wedge must evict, got {other:?}"),
    }
    // Evicted within the stall window (scaled by the job's
    // oversubscription, ≤ 2 here) per attempt, plus backoff and the
    // abort grace — not an open-ended hang.
    let per_attempt = stall * 2 + Duration::from_secs(2);
    assert!(
        elapsed < (per_attempt * 2) + backoff * 4,
        "eviction took {elapsed:?}, far beyond two stall windows"
    );
    let stats = server.stats();
    assert_eq!(stats.retries, 1, "one backoff retry granted");
    assert_eq!(stats.evicted, 1);

    // The pool survives: a healthy job right after completes clean.
    let healthy = server
        .submit(JobSpec::new(wedge_cfg(4), |ctx| {
            let x = ctx.shmalloc::<u64>(1);
            ctx.local_fill(&x, 7u64);
            ctx.barrier_all();
            assert_eq!(ctx.g(&x, 0, (ctx.my_pe() + 1) % ctx.n_pes()), 7);
        }))
        .expect("admitted")
        .wait();
    assert!(healthy.outcome.is_completed(), "{:?}", healthy.outcome);

    // ---- Phase 2: the PR-1 recipe (BlockingProtocolSends + depth-1
    // queues + chained dissemination barriers) through the server. The
    // deadlock needs genuinely concurrent PEs, so mirror the canary's
    // seed × attempt hunt; single-attempt policy (a wedge leaks its
    // threads, so retrying it buys nothing here).
    server.shutdown();
    let server = Server::round_robin(ServerConfig {
        workers: 4,
        stall,
        max_attempts: 1,
        backoff,
        ..Default::default()
    });
    tshmem::fault::set_blocking_protocol_sends(true);
    let mut caught = None;
    'hunt: for _ in 0..4 {
        for seed in [0x1u64, 0x3, 0x7] {
            let prog = std::sync::Arc::new(gen_program(&mut RngDraw::new(seed, 0), 8));
            let cfg = build_cfg(&prog, Some(1));
            let spec = JobSpec::new(cfg, move |ctx| run_on_ctx(&prog, ctx));
            let report = server.submit(spec).expect("admitted").wait();
            if let JobOutcome::Evicted { diagnosis, .. } = &report.outcome {
                caught = Some(diagnosis.clone());
                break 'hunt;
            }
        }
    }
    tshmem::fault::set_blocking_protocol_sends(false);
    let diagnosis = caught.expect(
        "fault-injected dissemination barriers at queue depth 1 never wedged across \
         4 attempts x 3 seeds; the server watchdog missed the reintroduced PR-1 bug",
    );
    assert!(
        diagnosis.contains("per-PE stall diagnosis (8 PEs)"),
        "missing per-PE report:\n{diagnosis}"
    );
    assert!(
        diagnosis.contains("active fault plan") || diagnosis.contains("classification:"),
        "missing classification:\n{diagnosis}"
    );

    // With the flag restored the same recipe completes oracle-clean —
    // the wedge came from the injected fault, and the pool is intact.
    let prog = std::sync::Arc::new(gen_program(&mut RngDraw::new(0x1, 0), 8));
    let cfg = build_cfg(&prog, Some(1));
    let report = server
        .submit(JobSpec::new(cfg, move |ctx| run_on_ctx(&prog, ctx)))
        .expect("admitted")
        .wait();
    assert!(report.outcome.is_completed(), "{:?}", report.outcome);
    server.shutdown();
}
