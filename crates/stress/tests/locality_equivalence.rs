//! Locality-on vs locality-off equivalence on seeded `--gen 4`
//! programs under the coop engine.
//!
//! The same-worker fast paths (direct peer copies, counter-cell barrier
//! transport, in-worker signal delivery) are pure transport
//! substitutions: with `fault::set_coop_locality` flipped off, every
//! operation takes the channel/protocol path instead, and both runs
//! must leave **identical heap, static, and collective-scratch state**
//! (enforced against the sequential oracle inside [`run_on_ctx`], which
//! both runs must satisfy) and identical **API-level `Stats`**. The
//! `redirected`/`locality_hits` pair and the raw put/get counters are
//! excluded by design: locality converts redirects into hits (not
//! always 1:1 — a single bypass can replace a chunked redirect loop)
//! and collective internals route different amounts of traffic when
//! cluster geometry or transport changes.
//!
//! Lives in its own test binary because the locality knob is
//! process-global and may only flip between launches (see fault.rs).

use stress::program::{gen_program_v, Program, RngDraw, GEN_V4};
use stress::run::{build_cfg, run_on_ctx};
use tshmem::prelude::*;
use tshmem::runtime::launch_coop;
use tshmem::Stats;

const SEED: u64 = 0x4C4F43414C455131;

fn coop_stats(
    prog: &Program,
    workers: usize,
    depth: Option<usize>,
    algos: Option<Algorithms>,
    locality: bool,
) -> Vec<Stats> {
    let mut cfg = build_cfg(prog, depth);
    if let Some(a) = algos {
        cfg = cfg.with_algos(a);
    }
    // Process-global; safe here only because it flips strictly between
    // launches — mid-job the PEs would disagree on barrier geometry.
    tshmem::fault::set_coop_locality(locality);
    let p = prog.clone();
    let stats = launch_coop(&cfg, workers, move |ctx| {
        run_on_ctx(&p, ctx);
        ctx.stats()
    });
    tshmem::fault::set_coop_locality(true);
    stats
}

#[test]
fn locality_on_and_off_agree_on_state_and_api_stats() {
    let forced_hier = Algorithms {
        barrier: BarrierAlgo::Hierarchical,
        broadcast: BroadcastAlgo::Hierarchical,
        reduce: ReduceAlgo::Hierarchical,
    };
    // case 0: 24 PEs / 3 workers, forced hierarchical collectives —
    //   the world set is shard-aligned (block = 8), so the on-arm takes
    //   the counter-cell barrier while team/strided subsets fall back.
    // case 1: 16 PEs / 4 workers with bounded UDN queues — exercises
    //   the RMA/strided/nbi bypasses alongside blocking channel sends.
    // case 2: 96 PEs / 2 workers — past the 64-member threshold the
    //   dispatcher auto-upgrades barriers to hierarchical, so the cells
    //   transport engages without forcing algorithms (block = 48).
    let cases = [
        (0u64, 24usize, 3usize, None, Some(forced_hier)),
        (1, 16, 4, Some(2), None),
        (2, 96, 2, None, None),
    ];
    let mut hits_on = 0u64;
    for (case, npes, workers, depth, algos) in cases {
        let prog = gen_program_v(&mut RngDraw::new(SEED, case), npes, GEN_V4);
        // Each run oracle-checks its own final state internally, so
        // passing both checks proves state equivalence; the Stats
        // comparison pins the API-visible operation counts on top.
        let on = coop_stats(&prog, workers, depth, algos, true);
        let off = coop_stats(&prog, workers, depth, algos, false);
        for (pe, (a, b)) in on.iter().zip(&off).enumerate() {
            assert_eq!(
                (a.barriers, a.collectives, a.atomics, a.fences, a.quiets, a.nbi_puts, a.nbi_gets),
                (b.barriers, b.collectives, b.atomics, b.fences, b.quiets, b.nbi_puts, b.nbi_gets),
                "case {case} npes {npes} PE {pe}: API-level stats diverged between locality on and off"
            );
            assert_eq!(
                b.locality_hits, 0,
                "case {case} npes {npes} PE {pe}: locality-off run took a fast path"
            );
        }
        hits_on += on.iter().map(|s| s.locality_hits).sum::<u64>();
    }
    // Sanity that the ablation is real: with small worker counts the
    // on-arms must have exercised at least one co-resident bypass.
    assert!(hits_on > 0, "locality-on runs never took a fast path — knob wired wrong?");
}
