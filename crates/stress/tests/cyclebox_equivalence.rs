//! Event-driven vs cycle-box final-state equivalence on seeded
//! programs.
//!
//! The cycle-box discipline batches LPs into lockstep virtual-time
//! boxes, so its interleavings (and per-PE clocks) differ from exact
//! event-driven order — but the protocols must still converge to the
//! **same final heap, static, collective, and atomic state**. Each run
//! oracle-checks its own final state internally (inside `run_on_ctx`),
//! so both runs passing proves state equivalence against the one
//! sequential model; on top of that, each mode must be bit-deterministic
//! across repeat runs.

use stress::program::{gen_program_v, RngDraw, GEN_LATEST};
use stress::run::{run_timed_mode, Outcome};
use tshmem::TimedMode;

const SEED: u64 = 0x7453484d454d5042;

fn assert_completed(outcome: Outcome, label: &str) {
    match outcome {
        Outcome::Completed => {}
        Outcome::Stalled(report) => panic!("{label}: stalled:\n{report}"),
    }
}

#[test]
fn both_modes_converge_to_the_oracle_on_seeded_programs() {
    for (case, npes, depth) in [(0u64, 6usize, None), (1, 8, Some(2)), (2, 5, None), (3, 12, None)]
    {
        let prog = gen_program_v(&mut RngDraw::new(SEED, case), npes, GEN_LATEST);
        for (mode, flag) in [
            (TimedMode::EventDriven, ""),
            (TimedMode::cycle_box(), " --cycle-box"),
        ] {
            let hint = format!(
                "cargo run -p stress -- --seed {SEED:#x} --case {case} --pes {npes} \
                 --depth {} --gen {GEN_LATEST} --engine timed{flag}",
                depth.unwrap_or(0)
            );
            assert_completed(
                run_timed_mode(&prog, depth, mode, &hint),
                &format!("case {case} npes {npes} mode{flag}"),
            );
        }
    }
}

#[test]
fn cycle_box_is_deterministic_and_tick_width_does_not_change_state() {
    // Determinism: identical runs stall/complete identically (both
    // oracle-checked). Tick-robustness: a much coarser box still
    // converges — the discipline changes performance, never outcomes.
    let prog = gen_program_v(&mut RngDraw::new(SEED, 4), 7, GEN_LATEST);
    let hint = format!(
        "cargo run -p stress -- --seed {SEED:#x} --case 4 --pes 7 --depth 0 \
         --gen {GEN_LATEST} --engine timed --cycle-box"
    );
    for _ in 0..2 {
        assert_completed(
            run_timed_mode(&prog, None, TimedMode::cycle_box(), &hint),
            "7 PEs cycle-box",
        );
    }
    assert_completed(
        run_timed_mode(&prog, None, TimedMode::CycleBox { tick_ns: 50_000 }, &hint),
        "7 PEs coarse cycle-box",
    );
}

#[test]
fn multichip_cycle_box_converges() {
    use stress::run::run_multichip_mode;
    let prog = gen_program_v(&mut RngDraw::new(SEED, 5), 8, GEN_LATEST);
    let hint = format!(
        "cargo run -p stress -- --seed {SEED:#x} --case 5 --pes 8 --depth 0 \
         --gen {GEN_LATEST} --engine multichip --cycle-box"
    );
    assert_completed(
        run_multichip_mode(&prog, None, TimedMode::cycle_box(), &hint),
        "8 PEs multichip cycle-box",
    );
}
