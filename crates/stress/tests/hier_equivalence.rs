//! Flat-vs-hierarchical collective equivalence on seeded `--gen 3`
//! programs.
//!
//! The hierarchical barrier/broadcast/reduce are pure reimplementations
//! of the same collective semantics, so forcing them on a program that
//! defaults to the flat algorithms must leave **identical heap, static,
//! and collective-scratch state** (enforced against the sequential
//! oracle inside [`run_on_ctx`], which both runs must satisfy) and
//! identical **API-level `Stats`** (barriers, collectives, atomics —
//! the put/get counters intentionally differ, since the algorithms
//! route different internal traffic).

use stress::program::{gen_program_v, Program, RngDraw, GEN_V3};
use stress::run::{build_cfg, run_on_ctx};
use tshmem::prelude::*;
use tshmem::Stats;

fn stats_with(prog: &Program, algos: Algorithms, depth: Option<usize>) -> Vec<Stats> {
    let cfg = build_cfg(prog, depth).with_algos(algos);
    let p = prog.clone();
    tshmem::launch(&cfg, move |ctx| {
        run_on_ctx(&p, ctx);
        ctx.stats()
    })
}

#[test]
fn flat_and_hier_collectives_agree_on_state_and_api_stats() {
    let flat = Algorithms {
        barrier: BarrierAlgo::Dissemination,
        broadcast: BroadcastAlgo::Pull,
        reduce: ReduceAlgo::Naive,
    };
    let hier = Algorithms {
        barrier: BarrierAlgo::Hierarchical,
        broadcast: BroadcastAlgo::Hierarchical,
        reduce: ReduceAlgo::Hierarchical,
    };
    for (case, npes, depth) in [(0u64, 6, None), (1, 8, Some(2)), (2, 5, None)] {
        let prog = gen_program_v(&mut RngDraw::new(0x41EC + case, 0), npes, GEN_V3);
        // Each run oracle-checks its own final state internally, so
        // passing both checks proves state equivalence.
        let sf = stats_with(&prog, flat, depth);
        let sh = stats_with(&prog, hier, depth);
        for (pe, (f, h)) in sf.iter().zip(&sh).enumerate() {
            assert_eq!(
                (f.barriers, f.collectives, f.atomics),
                (h.barriers, h.collectives, h.atomics),
                "case {case} npes {npes} PE {pe}: API-level stats diverged between flat and hier"
            );
        }
    }
}
