//! Coop-engine smoke seeds past the native tile cap: pinned `--gen 3`
//! programs at 64 and 256 PEs must converge to the sequential oracle
//! under M:N multiplexing, and the 256-PEs-on-4-workers run must finish
//! without the oversubscription-scaled watchdog raising a spurious
//! livelock/deadlock report (the satellite-1 regression: the unscaled
//! window plus the descheduled-PEs-count-as-frozen rule flagged exactly
//! this configuration).

use std::time::Duration;

use stress::program::{gen_program_v, RngDraw, GEN_V3, GEN_V4};
use stress::run::{run_coop, Outcome};

const SEED: u64 = 0x7453484d454d5031;

fn assert_completed(outcome: Outcome, label: &str) {
    match outcome {
        Outcome::Completed => {}
        Outcome::Stalled(report) => {
            panic!("{label}: watchdog fired on a convergent run:\n{report}")
        }
    }
}

#[test]
fn coop_smoke_64_pes() {
    let prog = gen_program_v(&mut RngDraw::new(SEED, 0), 64, GEN_V3);
    let hint = format!("--seed {SEED:#x} --case 0 --npes 64 --depth 0 --gen 3 --engine coop --workers 3");
    assert_completed(run_coop(&prog, None, 3, Duration::from_secs(5), &hint), "64 PEs / 3 workers");
}

#[test]
fn coop_smoke_256_pes_no_spurious_stall_report() {
    // 256 PEs on 4 workers = oversubscription 128 (capped to a 64×
    // window). A deliberately tight 1 s base window: with the scaling
    // fix the effective window is 64 s and the run completes well
    // inside it; pre-fix, the raw 1 s window tripped over admission
    // latency and the report misclassified the queued PEs as frozen.
    let prog = gen_program_v(&mut RngDraw::new(SEED, 1), 256, GEN_V3);
    let hint = format!("--seed {SEED:#x} --case 1 --npes 256 --depth 0 --gen 3 --engine coop --workers 4");
    assert_completed(run_coop(&prog, None, 4, Duration::from_secs(1), &hint), "256 PEs / 4 workers");
}

#[test]
fn coop_smoke_1024_pes() {
    // The full ROADMAP scale on a deliberately small worker pool:
    // 1024 PEs on 4 workers = oversubscription 256 (capped to a 64×
    // window). A 2 s base window relies entirely on the scaled
    // watchdog; with the locality fast paths on by default this also
    // smoke-tests the counter-cell barrier at block = 256, where the
    // dispatcher auto-upgrades every world barrier to hierarchical.
    //
    // Case 8 is chosen from the stream deliberately: its mix
    // (TeamColl + two Colls + NbiTrain) is parallel-friendly, whereas
    // neighboring cases draw a global Lock or token rings — n serial
    // gate handoffs per round that cost debug-build minutes at this
    // scale and measure the box, not the engine.
    let prog = gen_program_v(&mut RngDraw::new(SEED, 8), 1024, GEN_V4);
    let hint = format!("--seed {SEED:#x} --case 8 --npes 1024 --depth 0 --gen 4 --engine coop --workers 4");
    assert_completed(run_coop(&prog, None, 4, Duration::from_secs(2), &hint), "1024 PEs / 4 workers");
}

#[test]
fn coop_smoke_bounded_queues() {
    // Finite UDN buffers under oversubscription: the gate must be
    // released around blocking sends or a full queue wedges the worker.
    let prog = gen_program_v(&mut RngDraw::new(SEED, 2), 64, GEN_V3);
    let hint = format!("--seed {SEED:#x} --case 2 --npes 64 --depth 2 --gen 3 --engine coop --workers 2");
    assert_completed(run_coop(&prog, Some(2), 2, Duration::from_secs(5), &hint), "64 PEs depth 2");
}
