//! Coop-engine smoke seeds past the native tile cap: pinned `--gen 3`
//! programs at 64 and 256 PEs must converge to the sequential oracle
//! under M:N multiplexing, and the 256-PEs-on-4-workers run must finish
//! without the oversubscription-scaled watchdog raising a spurious
//! livelock/deadlock report (the satellite-1 regression: the unscaled
//! window plus the descheduled-PEs-count-as-frozen rule flagged exactly
//! this configuration).

use std::time::Duration;

use stress::program::{gen_program_v, RngDraw, GEN_V3};
use stress::run::{run_coop, Outcome};

const SEED: u64 = 0x7453484d454d5031;

fn assert_completed(outcome: Outcome, label: &str) {
    match outcome {
        Outcome::Completed => {}
        Outcome::Stalled(report) => {
            panic!("{label}: watchdog fired on a convergent run:\n{report}")
        }
    }
}

#[test]
fn coop_smoke_64_pes() {
    let prog = gen_program_v(&mut RngDraw::new(SEED, 0), 64, GEN_V3);
    let hint = format!("--seed {SEED:#x} --case 0 --npes 64 --depth 0 --gen 3 --engine coop --workers 3");
    assert_completed(run_coop(&prog, None, 3, Duration::from_secs(5), &hint), "64 PEs / 3 workers");
}

#[test]
fn coop_smoke_256_pes_no_spurious_stall_report() {
    // 256 PEs on 4 workers = oversubscription 128 (capped to a 64×
    // window). A deliberately tight 1 s base window: with the scaling
    // fix the effective window is 64 s and the run completes well
    // inside it; pre-fix, the raw 1 s window tripped over admission
    // latency and the report misclassified the queued PEs as frozen.
    let prog = gen_program_v(&mut RngDraw::new(SEED, 1), 256, GEN_V3);
    let hint = format!("--seed {SEED:#x} --case 1 --npes 256 --depth 0 --gen 3 --engine coop --workers 4");
    assert_completed(run_coop(&prog, None, 4, Duration::from_secs(1), &hint), "256 PEs / 4 workers");
}

#[test]
fn coop_smoke_bounded_queues() {
    // Finite UDN buffers under oversubscription: the gate must be
    // released around blocking sends or a full queue wedges the worker.
    let prog = gen_program_v(&mut RngDraw::new(SEED, 2), 64, GEN_V3);
    let hint = format!("--seed {SEED:#x} --case 2 --npes 64 --depth 2 --gen 3 --engine coop --workers 2");
    assert_completed(run_coop(&prog, Some(2), 2, Duration::from_secs(5), &hint), "64 PEs depth 2");
}
