//! Timed-engine smoke seeds at coop scale: pinned `--gen 3` programs at
//! 256 PEs (512 LPs — PE contexts plus service contexts) must converge
//! to the sequential oracle under the virtual-time scheduler in **both**
//! scheduling disciplines. The replay hints carry the mode: the two
//! disciplines reach the same final state along different schedules, so
//! a failure replays only under the mode that produced it.

use stress::program::{gen_program_v, RngDraw, GEN_V3};
use stress::run::{run_timed_mode, Outcome};
use tshmem::TimedMode;

const SEED: u64 = 0x7453484d454d5039;

fn assert_completed(outcome: Outcome, label: &str) {
    match outcome {
        Outcome::Completed => {}
        Outcome::Stalled(report) => {
            panic!("{label}: timed watchdog fired on a convergent run:\n{report}")
        }
    }
}

#[test]
fn timed_smoke_256_pes_event_driven() {
    let prog = gen_program_v(&mut RngDraw::new(SEED, 0), 256, GEN_V3);
    let hint = format!("cargo run -p stress -- --seed {SEED:#x} --case 0 --npes 256 --depth 0 --gen 3 --engine timed");
    assert_completed(
        run_timed_mode(&prog, None, TimedMode::EventDriven, &hint),
        "256 PEs event-driven",
    );
}

#[test]
fn timed_smoke_256_pes_cycle_box() {
    let prog = gen_program_v(&mut RngDraw::new(SEED, 0), 256, GEN_V3);
    let hint = format!("cargo run -p stress -- --seed {SEED:#x} --case 0 --npes 256 --depth 0 --gen 3 --engine timed --cycle-box");
    assert_completed(
        run_timed_mode(&prog, None, TimedMode::cycle_box(), &hint),
        "256 PEs cycle-box",
    );
}

#[test]
fn timed_smoke_bounded_queues_both_modes() {
    // Finite UDN buffers: credit-blocked sends must wake correctly
    // under both disciplines (the cycle-box key change reorders grants
    // within a box, which is exactly where a missed credit wake hides).
    let prog = gen_program_v(&mut RngDraw::new(SEED, 1), 64, GEN_V3);
    for (mode, flag) in [
        (TimedMode::EventDriven, ""),
        (TimedMode::cycle_box(), " --cycle-box"),
    ] {
        let hint = format!(
            "cargo run -p stress -- --seed {SEED:#x} --case 1 --npes 64 --depth 2 --gen 3 --engine timed{flag}"
        );
        assert_completed(
            run_timed_mode(&prog, Some(2), mode, &hint),
            "64 PEs depth 2",
        );
    }
}
