//! Fast-path / general-path equivalence suite.
//!
//! The RMA fast paths (unit-stride batched `iput`/`iget`, contiguous-
//! source borrows, direct temp drains) are pure optimizations: running
//! the same seeded `--gen 3` program with the fast paths disabled
//! (`fault::set_rma_fast_paths(false)`) must leave **identical heap and
//! static final state** and **identical per-PE `Stats` counters** on
//! the native and timed engines.
//!
//! State equality is enforced inside [`run_on_ctx`], which asserts every
//! PE's full view (heap copy, static segment, collective scratch,
//! recorded get streams, signal/atomic cells) against the sequential
//! oracle — both the fast and the general run must match that one
//! model, so they match each other. Stats are compared directly here.
//!
//! One `#[test]` on purpose: the fast-path switch is process-global, so
//! this binary must never run it in parallel with other tests.

use stress::program::{gen_program_v, RngDraw, GEN_V3};
use stress::run::{build_cfg, run_on_ctx};
use tshmem::fault;
use tshmem::Stats;

fn stats_for(prog: &stress::program::Program, fast: bool) -> (Vec<Stats>, Vec<Stats>) {
    fault::set_rma_fast_paths(fast);
    let cfg = build_cfg(prog, Some(2));
    let native = tshmem::launch(&cfg, |ctx| {
        run_on_ctx(prog, ctx);
        ctx.stats()
    });
    let timed = tshmem::launch_timed(&cfg, |ctx| {
        run_on_ctx(prog, ctx);
        ctx.stats()
    })
    .values;
    fault::set_rma_fast_paths(true);
    (native, timed)
}

#[test]
fn fast_and_general_paths_agree_on_state_and_stats() {
    for case in 0..2u64 {
        let prog = gen_program_v(&mut RngDraw::new(0x5EED + case, 0), 4, GEN_V3);
        // Each run oracle-checks its own final state internally.
        let (native_fast, timed_fast) = stats_for(&prog, true);
        let (native_gen, timed_gen) = stats_for(&prog, false);
        assert_eq!(
            native_fast, native_gen,
            "case {case}: native stats diverged between fast and general paths"
        );
        assert_eq!(
            timed_fast, timed_gen,
            "case {case}: timed stats diverged between fast and general paths"
        );
        // And the engines agree with each other on the logical op counts.
        assert_eq!(
            native_fast, timed_fast,
            "case {case}: native and timed stats diverged"
        );
    }
}
