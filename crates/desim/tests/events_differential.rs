//! Differential property tests: the calendar-queue event core vs the
//! retained pre-refactor `BinaryHeap` reference core.
//!
//! Seeded random schedules — including dense same-instant collisions and
//! `run_until` deadlines landing exactly on, just before, and just after
//! event times — must produce byte-identical firing logs, time
//! trajectories, and executed counts on both cores. The reference core
//! is the semantic oracle; any divergence is a calendar-queue bug.

use std::cell::RefCell;
use std::rc::Rc;

use desim::{QueueKind, Sim, SimTime};
use substrate::proptest_mini as pt;

/// One interpreted step of a random schedule program.
///
/// `(sel, a, b)` decodes to: `sel % 4 == 3` → `run_until(now + a)`;
/// otherwise → schedule an event at `now + a` that logs `(time, tag)`
/// and, when `b % 4 == 0`, schedules a child event `b` ps later. Child
/// scheduling from inside a firing event exercises the calendar cursor
/// mid-rotation.
type Op = (u64, u64, u64);

/// `(time, tag)` firing log / `(now, executed)` run_until trajectory.
type Trace = Vec<(u64, u64)>;

fn drive(kind: QueueKind, ops: &[Op], amod: u64, umod: u64) -> (Trace, Trace) {
    let log: Rc<RefCell<Trace>> = Rc::new(RefCell::new(Vec::new()));
    let mut marks: Trace = Vec::new();
    let mut sim = Sim::with_kind(kind);
    for (i, &(sel, a, b)) in ops.iter().enumerate() {
        if sel % 4 == 3 {
            sim.run_until(SimTime::from_ps(sim.now().ps() + a % umod));
            marks.push((sim.now().ps(), sim.executed()));
        } else {
            let tag = i as u64;
            let log = log.clone();
            let at = SimTime::from_ps(sim.now().ps() + a % amod);
            let child = b % 4 == 0;
            let delta = b % 500;
            sim.schedule_at(at, move |s| {
                log.borrow_mut().push((s.now().ps(), tag));
                if child {
                    let log = log.clone();
                    s.schedule_in(SimTime::from_ps(delta), move |s2| {
                        log.borrow_mut().push((s2.now().ps(), tag | 0x1000));
                    });
                }
            });
        }
    }
    sim.run();
    marks.push((sim.now().ps(), sim.executed()));
    let log = Rc::try_unwrap(log).expect("events drained").into_inner();
    (log, marks)
}

fn check_equivalence(ops: &[Op], amod: u64, umod: u64) {
    let (cal_log, cal_marks) = drive(QueueKind::Calendar, ops, amod, umod);
    let (ref_log, ref_marks) = drive(QueueKind::ReferenceHeap, ops, amod, umod);
    assert_eq!(cal_log, ref_log, "firing logs diverged");
    assert_eq!(cal_marks, ref_marks, "run_until time/executed trajectory diverged");
}

#[test]
fn calendar_matches_reference_on_random_schedules() {
    pt::check(
        pt::Config::with_cases(64).seed(0x7453484d_454d5039),
        pt::vec((0u64..8, 0u64..4096, 0u64..4096), 1..120),
        |ops| check_equivalence(&ops, 2_000, 3_000),
    );
}

#[test]
fn calendar_matches_reference_under_dense_same_instant_ties() {
    // Times drawn from {now, now+1, now+2}: nearly everything collides,
    // so intra-bucket insertion-order selection does all the work.
    pt::check(
        pt::Config::with_cases(64).seed(0x7453484d_454d5040),
        pt::vec((0u64..8, 0u64..4096, 0u64..4096), 1..100),
        |ops| check_equivalence(&ops, 3, 4),
    );
}

#[test]
fn calendar_matches_reference_across_wide_time_jumps() {
    // Large sparse deltas force full cursor rotations and the direct
    // min-scan fallback, plus grow/shrink resizes.
    pt::check(
        pt::Config::with_cases(32).seed(0x7453484d_454d5041),
        pt::vec((0u64..8, 0u64..u64::MAX / 2, 0u64..4096), 1..80),
        |ops| check_equivalence(&ops, 40_000_000_000, 60_000_000_000),
    );
}

#[test]
fn run_until_exact_boundary_matches() {
    // Deterministic boundary cases: deadline == event time, one before,
    // one after — both cores must agree on what fired and on `now`.
    for kind in [QueueKind::Calendar, QueueKind::ReferenceHeap] {
        for (deadline, want_fired) in [(999u64, 0u64), (1000, 1), (1001, 1)] {
            let mut sim = Sim::with_kind(kind);
            sim.schedule_at(SimTime::from_ps(1000), |_| {});
            sim.run_until(SimTime::from_ps(deadline));
            assert_eq!(sim.executed(), want_fired, "{kind:?} deadline {deadline}");
            assert_eq!(sim.now().ps(), deadline);
            assert_eq!(sim.pending() as u64, 1 - want_fired);
        }
    }
}
