//! Discrete-event simulation kernel for the Tilera substrate models.
//!
//! Four pieces:
//!
//! * [`SimTime`] — integer picosecond simulated time (exact for both the
//!   1 GHz TILE-Gx and the 700 MHz TILEPro clock grids).
//! * [`Sim`] — a classic closure-based event queue for open-loop models.
//! * [`coop`] — a **virtual-time cooperative scheduler**: each simulated
//!   processing element runs as a real thread with its own virtual clock,
//!   but exactly one runs at any instant and the scheduler always resumes
//!   the thread with the smallest effective clock. Blocking protocol code
//!   (token barriers, collectives) therefore executes unchanged under
//!   simulated time, deterministically.
//! * [`resource`] — busy-until FIFO servers used to model contended
//!   hardware (home-tile cache ports, memory controllers).
//!
//! The cooperative scheduler is what lets the TSHMEM protocol
//! implementations be written once and executed by both the native-thread
//! engine (real time) and the timed engine (simulated time) — see
//! `DESIGN.md` §6.

pub mod coop;
pub mod events;
pub mod resource;
pub mod time;

pub use coop::{CoopHandle, CoopObserver, CoopResult, LpStall, SchedMode};
pub use events::{QueueKind, Sim};
pub use resource::Resource;
pub use time::SimTime;
