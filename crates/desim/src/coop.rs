//! Virtual-time cooperative scheduler.
//!
//! Each simulated processing element (LP — *logical process*) runs as a
//! real OS thread with its own virtual clock, but **exactly one LP
//! executes at any instant** and the scheduler always hands control to
//! the LP with the smallest *effective clock*:
//!
//! * a runnable LP's effective clock is its own clock;
//! * an LP blocked on `recv` becomes runnable when its mailbox is
//!   non-empty, with effective clock `max(own clock, earliest arrival)`;
//! * finished LPs never run again.
//!
//! Because the minimum-clock LP runs first and message latencies are
//! non-negative, no future send can ever arrive before the effective
//! clock of the LP being resumed — the classic conservative-simulation
//! argument — so blocking protocol code (token barriers, collectives,
//! request/reply) executes under simulated time with *sequential,
//! deterministic* semantics while being written in ordinary blocking
//! style.
//!
//! # Scheduling internals
//!
//! Handoffs are O(log n), not O(n): runnable LPs are indexed by a lazy
//! min-heap of `(key, id)` entries where `key` is derived from the
//! effective clock by the active [`SchedMode`]. Entries are *not*
//! removed when an LP's effective clock changes — a popped entry is
//! validated by recomputing the key and silently discarded when stale
//! (same trick as a lazy-deletion Dijkstra heap). Mailboxes are binary
//! heaps ordered by `(arrival, seq)`, so `recv` pops the earliest
//! message in O(log m) and the effective-clock probe is an O(1) peek.
//! Condvar notifies are waiter-gated: an LP that has not parked yet is
//! granted the token by a flag check alone, with no futex syscall.
//!
//! # Scheduling modes
//!
//! [`SchedMode::EventDriven`] (the default) is the pure discrete-event
//! order described above. [`SchedMode::CycleBox`] partitions virtual
//! time into fixed-width tick boxes: within a box, runnable LPs execute
//! in id order, each running until its effective clock leaves the box.
//! A spinning LP therefore keeps its OS thread (and the scheduler's
//! cache lines) until the box drains, trading exact event interleaving
//! for far fewer cross-thread handoffs. Cross-LP message *order within
//! one box* may differ from event-driven order — the same reordering a
//! real mesh exhibits — so protocol outcomes converge while per-LP
//! clocks may differ by bounded amounts.
//!
//! # Example
//!
//! ```
//! use desim::{coop, SimTime};
//!
//! // Two PEs play ping-pong with a 21 ns one-way wire latency.
//! let out = coop::run(2, 1, |h| {
//!     let wire = SimTime::from_ns(21);
//!     if h.id() == 0 {
//!         h.send(1, 0, 42u64, wire);
//!         let _ = h.recv(0);
//!         h.now()
//!     } else {
//!         let v = h.recv(0);
//!         h.send(0, 0, v + 1, wire);
//!         h.now()
//!     }
//! });
//! // PE0 observes the round trip: 42 ns.
//! assert_eq!(out.values[0], SimTime::from_ns(42));
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use substrate::sync::{Condvar, Mutex};

use crate::time::SimTime;

/// Scheduling discipline for a cooperative run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedMode {
    /// Pure discrete-event order: the LP with the minimum effective
    /// clock runs next, ties broken toward the smallest id.
    #[default]
    EventDriven,
    /// Lockstep tick execution: virtual time is cut into boxes of
    /// `tick` width; within a box, runnable LPs run in id order, each
    /// until its effective clock leaves the box. Fewer handoffs, same
    /// protocol outcomes, per-LP clocks may differ from event-driven
    /// by bounded amounts.
    CycleBox { tick: SimTime },
}

impl SchedMode {
    /// Scheduling key for an effective clock value. The run queue
    /// orders by `(key, id)`, so event-driven keys are exact clocks and
    /// cycle-box keys are box indices.
    fn key(&self, eff: u64) -> u64 {
        match self {
            SchedMode::EventDriven => eff,
            SchedMode::CycleBox { tick } => eff / tick.ps().max(1),
        }
    }
}

/// Per-LP status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Runnable (or currently running).
    Ready,
    /// Blocked in `recv` on the given channel.
    BlockedRecv(usize),
    /// Function returned.
    Done,
}

/// Mailbox entry; the heap Ord is reversed on `(arrival, seq)` so the
/// earliest message (FIFO among same-instant arrivals) pops first. The
/// payload never participates in the comparison.
struct MbMsg<M> {
    arrival: u64,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for MbMsg<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.arrival, self.seq) == (other.arrival, other.seq)
    }
}
impl<M> Eq for MbMsg<M> {}
impl<M> PartialOrd for MbMsg<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for MbMsg<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-(arrival, seq).
        (other.arrival, other.seq).cmp(&(self.arrival, self.seq))
    }
}

struct Mailbox<M> {
    msgs: BinaryHeap<MbMsg<M>>,
}

impl<M> Mailbox<M> {
    fn new() -> Self {
        Self {
            msgs: BinaryHeap::new(),
        }
    }

    fn push(&mut self, arrival: u64, seq: u64, msg: M) {
        self.msgs.push(MbMsg { arrival, seq, msg });
    }

    /// O(1): the heap root is the earliest (arrival, seq).
    fn min_arrival(&self) -> Option<u64> {
        self.msgs.peek().map(|m| m.arrival)
    }

    /// O(log m): pop the minimum-(arrival, seq) message.
    fn pop_min(&mut self) -> Option<(u64, M)> {
        self.msgs.pop().map(|m| (m.arrival, m.msg))
    }

    fn len(&self) -> usize {
        self.msgs.len()
    }
}

struct LpState<M> {
    clock: u64,
    status: Status,
    /// Whether the LP's thread is parked in a condvar wait. Grants to
    /// unparked LPs skip the notify: they observe `running == id` at
    /// their next wait-condition check.
    parked: bool,
    boxes: Vec<Mailbox<M>>,
}

struct SchedState<M> {
    lps: Vec<LpState<M>>,
    /// Lazy scheduling index: `(key, id)` entries, min-popped. Entries
    /// go stale when an LP's effective clock changes; `pop_next`
    /// validates by recomputation and discards mismatches.
    runq: BinaryHeap<Reverse<(u64, usize)>>,
    mode: SchedMode,
    /// LP currently holding the execution token.
    running: usize,
    finished: usize,
    seq: u64,
    /// Set when an LP panicked or a deadlock was detected.
    poisoned: Option<String>,
}

/// Snapshot of one LP's scheduling state at deadlock-detection time,
/// handed to a [`CoopObserver`] so an engine-level watchdog can render
/// a diagnosis in its own vocabulary.
#[derive(Clone, Debug)]
pub struct LpStall {
    /// LP id.
    pub id: usize,
    /// Whether the LP's function has already returned.
    pub done: bool,
    /// The channel the LP is parked in `recv` on, if any.
    pub blocked_on: Option<usize>,
    /// The LP's virtual clock at detection time.
    pub clock: SimTime,
    /// Per-channel counts of queued (possibly future-arrival) messages.
    pub queued: Vec<usize>,
}

/// Deadlock observer: invoked exactly once when the scheduler detects
/// that no LP can ever run again (the virtual event queue drained while
/// unfinished LPs are parked). Any returned text is appended to the
/// scheduler's poison/panic message.
///
/// Called with the scheduler lock held — implementations must not call
/// back into the scheduler (no `CoopHandle` methods) and should only
/// format a report from the snapshot plus their own state.
pub trait CoopObserver: Send + Sync {
    fn on_deadlock(&self, lps: &[LpStall]) -> Option<String>;
}

impl<M> SchedState<M> {
    fn effective(&self, id: usize) -> Option<u64> {
        let lp = &self.lps[id];
        match lp.status {
            Status::Ready => Some(lp.clock),
            Status::BlockedRecv(ch) => lp.boxes[ch]
                .min_arrival()
                .map(|a| a.max(lp.clock)),
            Status::Done => None,
        }
    }

    /// Publish `id` to the run queue under its current effective clock.
    /// No-op for LPs that cannot run (done, or blocked with an empty
    /// mailbox — the sender that fills the mailbox publishes them).
    fn push_runnable(&mut self, id: usize) {
        if let Some(e) = self.effective(id) {
            let k = self.mode.key(e);
            self.runq.push(Reverse((k, id)));
        }
    }

    /// Pop the next grantable LP: the minimum `(key, id)` entry whose
    /// key still matches the LP's current effective clock. Stale
    /// entries (the LP ran, blocked differently, or finished since the
    /// push) are discarded. Returns `None` when no LP can run.
    fn pop_next(&mut self) -> Option<usize> {
        while let Some(Reverse((k, id))) = self.runq.pop() {
            if self.effective(id).map(|e| self.mode.key(e)) == Some(k) {
                return Some(id);
            }
        }
        None
    }

    /// Per-LP stall snapshot for the deadlock observer.
    fn stalls(&self) -> Vec<LpStall> {
        self.lps
            .iter()
            .enumerate()
            .map(|(id, lp)| LpStall {
                id,
                done: matches!(lp.status, Status::Done),
                blocked_on: match lp.status {
                    Status::BlockedRecv(ch) => Some(ch),
                    _ => None,
                },
                clock: SimTime::from_ps(lp.clock),
                queued: lp.boxes.iter().map(|b| b.len()).collect(),
            })
            .collect()
    }
}

struct Shared<M> {
    state: Mutex<SchedState<M>>,
    cvs: Vec<Condvar>,
    observer: Option<Arc<dyn CoopObserver>>,
}

impl<M> Shared<M> {
    /// Grant the token to `next`, waking its thread only if it already
    /// parked (waiter-gated notify). Callers hold the lock.
    fn grant(&self, guard: &mut SchedState<M>, next: usize) {
        guard.running = next;
        if guard.lps[next].parked {
            self.cvs[next].notify_one();
        }
    }

    /// Hand the token to the next LP (which may be `self_id` again).
    /// Must be called with the lock held; returns holding the lock, with
    /// the token back at `self_id`.
    fn reschedule<'a>(
        &'a self,
        mut guard: substrate::sync::MutexGuard<'a, SchedState<M>>,
        self_id: usize,
    ) -> substrate::sync::MutexGuard<'a, SchedState<M>> {
        // Publish ourselves before picking: if we still hold the minimum
        // effective clock we pop our own entry and keep the token with
        // no syscall at all.
        guard.push_runnable(self_id);
        loop {
            if let Some(msg) = &guard.poisoned {
                let msg = msg.clone();
                drop(guard);
                panic!("coop scheduler poisoned: {msg}");
            }
            match guard.pop_next() {
                Some(next) if next == self_id => {
                    guard.running = self_id;
                    return guard;
                }
                Some(next) => {
                    self.grant(&mut guard, next);
                    // Park until granted back (or poisoned). Spurious
                    // wakes just re-park.
                    loop {
                        guard.lps[self_id].parked = true;
                        self.cvs[self_id].wait(&mut guard);
                        guard.lps[self_id].parked = false;
                        if guard.poisoned.is_some() {
                            break; // outer loop panics with the message
                        }
                        if guard.running == self_id {
                            return guard;
                        }
                    }
                }
                None => {
                    if guard.finished == guard.lps.len() {
                        // Everyone done; nothing to schedule. We only get
                        // here from a finished LP's final yield.
                        guard.running = usize::MAX;
                        return guard;
                    }
                    let blocked: Vec<usize> = (0..guard.lps.len())
                        .filter(|&i| matches!(guard.lps[i].status, Status::BlockedRecv(_)))
                        .collect();
                    let mut msg =
                        format!("deadlock: no runnable LP; blocked LPs: {blocked:?}");
                    if let Some(obs) = &self.observer {
                        if let Some(extra) = obs.on_deadlock(&guard.stalls()) {
                            msg.push('\n');
                            msg.push_str(&extra);
                        }
                    }
                    guard.poisoned = Some(msg);
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                    let msg = guard.poisoned.clone().unwrap();
                    drop(guard);
                    panic!("coop scheduler poisoned: {msg}");
                }
            }
        }
    }
}

/// Handle held by each LP; all simulated-time operations go through it.
pub struct CoopHandle<M> {
    id: usize,
    n: usize,
    channels: usize,
    shared: Arc<Shared<M>>,
}

impl<M: Send> CoopHandle<M> {
    /// This LP's id (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of LPs in the simulation.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of channels per LP.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// This LP's current virtual clock.
    pub fn now(&self) -> SimTime {
        let g = self.shared.state.lock();
        SimTime::from_ps(g.lps[self.id].clock)
    }

    /// Advance this LP's clock by `dt` and yield to the scheduler.
    pub fn advance(&self, dt: SimTime) {
        let mut g = self.shared.state.lock();
        g.lps[self.id].clock += dt.ps();
        let g = self.shared.reschedule(g, self.id);
        drop(g);
    }

    /// Advance this LP's clock to at least `t` and yield.
    pub fn advance_to(&self, t: SimTime) {
        let mut g = self.shared.state.lock();
        let c = &mut g.lps[self.id].clock;
        *c = (*c).max(t.ps());
        let g = self.shared.reschedule(g, self.id);
        drop(g);
    }

    /// Yield without advancing time (lets equal-clock LPs with smaller
    /// ids run).
    pub fn yield_now(&self) {
        let g = self.shared.state.lock();
        let g = self.shared.reschedule(g, self.id);
        drop(g);
    }

    /// Send `msg` to LP `dest` on `channel`; it arrives at
    /// `now + latency`. Sending never blocks and does not advance the
    /// sender's clock (charge any software overhead with [`advance`]
    /// separately).
    ///
    /// [`advance`]: CoopHandle::advance
    pub fn send(&self, dest: usize, channel: usize, msg: M, latency: SimTime) {
        let mut g = self.shared.state.lock();
        assert!(dest < g.lps.len(), "send to unknown LP {dest}");
        assert!(channel < self.channels, "send on unknown channel {channel}");
        let arrival = g.lps[self.id].clock + latency.ps();
        let seq = g.seq;
        g.seq += 1;
        let dst = &mut g.lps[dest];
        let old_min = dst.boxes[channel].min_arrival();
        dst.boxes[channel].push(arrival, seq, msg);
        // A blocked receiver just became runnable (or got an earlier
        // wake-up time): publish it under the new effective clock. Its
        // older runq entries, if any, go stale and are discarded lazily.
        if let Status::BlockedRecv(ch) = dst.status {
            if ch == channel && old_min.is_none_or(|m| arrival < m) {
                g.push_runnable(dest);
            }
        }
        // The sender keeps the token: its effective clock is still the
        // minimum (arrival >= our clock for latency >= 0).
    }

    /// Blocking receive on `channel`: returns the earliest-arriving
    /// message, advancing this LP's clock to the arrival time if it is
    /// in the future.
    pub fn recv(&self, channel: usize) -> M {
        assert!(channel < self.channels, "recv on unknown channel {channel}");
        let mut g = self.shared.state.lock();
        g.lps[self.id].status = Status::BlockedRecv(channel);
        let mut g = self.shared.reschedule(g, self.id);
        // We were resumed: the scheduler guarantees the mailbox is
        // non-empty (effective clock required an arrival).
        let (arrival, msg) = g.lps[self.id].boxes[channel]
            .pop_min()
            .expect("scheduler resumed recv with empty mailbox");
        let lp = &mut g.lps[self.id];
        lp.clock = lp.clock.max(arrival);
        lp.status = Status::Ready;
        drop(g);
        msg
    }

    /// Non-blocking receive: a message whose arrival time is ≤ now, if
    /// any. (Messages "in flight" with future arrivals are not visible.)
    pub fn try_recv(&self, channel: usize) -> Option<M> {
        let mut g = self.shared.state.lock();
        let now = g.lps[self.id].clock;
        let mb = &mut g.lps[self.id].boxes[channel];
        match mb.min_arrival() {
            Some(a) if a <= now => mb.pop_min().map(|(_, m)| m),
            _ => None,
        }
    }

    /// Whether a message is available right now (arrival ≤ now).
    pub fn poll(&self, channel: usize) -> bool {
        let g = self.shared.state.lock();
        let now = g.lps[self.id].clock;
        g.lps[self.id].boxes[channel]
            .min_arrival()
            .is_some_and(|a| a <= now)
    }

    /// Run `f` with the scheduler lock held — used by engines to mutate
    /// simulation-global state (resource banks, shared memory models)
    /// deterministically. Since only one LP ever runs at a time, the lock
    /// is uncontended; this is about atomicity with respect to scheduling,
    /// not mutual exclusion between LPs.
    pub fn with_global<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.shared.state.lock();
        f()
    }
}

/// Result of a cooperative run.
#[derive(Debug)]
pub struct CoopResult<R> {
    /// Per-LP return values, indexed by LP id.
    pub values: Vec<R>,
    /// Per-LP final clocks.
    pub clocks: Vec<SimTime>,
    /// The maximum final clock (the simulated makespan).
    pub makespan: SimTime,
}

/// Run `n` LPs, each executing `f(handle)`, under virtual time.
///
/// `channels` is the number of mailbox channels per LP. Returns each LP's
/// result and final clock.
///
/// # Panics
/// Panics if any LP panics or if the simulation deadlocks (every
/// unfinished LP blocked on an empty mailbox).
pub fn run<M, R, F>(n: usize, channels: usize, f: F) -> CoopResult<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    run_mode(n, channels, SchedMode::EventDriven, None, f)
}

/// [`run`] with a deadlock observer: when the simulation deadlocks,
/// `observer.on_deadlock` is invoked once with a per-LP stall snapshot
/// and any text it returns is appended to the poison/panic message —
/// the hook `launch_timed_watched` uses to render a per-PE diagnosis.
pub fn run_observed<M, R, F>(
    n: usize,
    channels: usize,
    observer: Option<Arc<dyn CoopObserver>>,
    f: F,
) -> CoopResult<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    run_mode(n, channels, SchedMode::EventDriven, observer, f)
}

/// [`run_observed`] with an explicit [`SchedMode`] — the full entry
/// point the timed engine uses to select event-driven vs cycle-box
/// execution per run.
pub fn run_mode<M, R, F>(
    n: usize,
    channels: usize,
    mode: SchedMode,
    observer: Option<Arc<dyn CoopObserver>>,
    f: F,
) -> CoopResult<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    assert!(n > 0, "need at least one LP");
    assert!(channels > 0, "need at least one channel");
    let mut state = SchedState {
        lps: (0..n)
            .map(|_| LpState {
                clock: 0,
                status: Status::Ready,
                parked: false,
                boxes: (0..channels).map(|_| Mailbox::new()).collect(),
            })
            .collect(),
        runq: BinaryHeap::with_capacity(2 * n),
        mode,
        running: 0,
        finished: 0,
        seq: 0,
        poisoned: None,
    };
    // LP 0 starts holding the token; everyone else is published at
    // clock 0 so the first handoffs find them.
    for id in 1..n {
        state.push_runnable(id);
    }
    let shared = Arc::new(Shared {
        state: Mutex::new(state),
        cvs: (0..n).map(|_| Condvar::new()).collect(),
        observer,
    });
    let f = &f;

    // Scoped threads: all LPs are joined before `scope` returns, so `f`
    // and any state it borrows only need to outlive the scope — callers
    // can pass closures capturing stack references (the generic
    // `Launcher` relies on this to give every engine one bound set).
    let outcomes: Vec<LpOutcome<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|id| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("coop-lp-{id}"))
                    .spawn_scoped(scope, move || lp_main(id, n, channels, shared, f))
                    .expect("spawn LP thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("LP thread itself must not die"))
            .collect()
    });

    let mut values: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut clocks = vec![SimTime::ZERO; n]; // cold: once per run, after all LPs joined
    let mut original_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut secondary_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for (id, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok((r, clk)) => {
                values[id] = Some(r);
                clocks[id] = clk;
            }
            Err((p, original)) => {
                let slot = if original {
                    &mut original_panic
                } else {
                    &mut secondary_panic
                };
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
        }
    }
    // Prefer the panic that started the collapse over the induced
    // "scheduler poisoned" panics of bystander LPs.
    if let Some(p) = original_panic.or(secondary_panic) {
        panic::resume_unwind(p);
    }
    let makespan = clocks.iter().copied().fold(SimTime::ZERO, SimTime::max);
    CoopResult {
        values: values.into_iter().map(|v| v.unwrap()).collect(),
        clocks,
        makespan,
    }
}

/// Error side carries `(payload, was_original_panic)` — bystander LPs die
/// with an induced "poisoned" panic that should not mask the real one.
type LpOutcome<R> = Result<(R, SimTime), (Box<dyn std::any::Any + Send>, bool)>;

fn lp_main<M, R, F>(
    id: usize,
    n: usize,
    channels: usize,
    shared: Arc<Shared<M>>,
    f: &F,
) -> LpOutcome<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    // Wait for the token before starting (LP 0 starts holding it by
    // construction; the rest are granted by runq pops).
    {
        let mut g = shared.state.lock();
        while g.running != id {
            if g.poisoned.is_some() {
                return Err((Box::new("poisoned before start"), false));
            }
            g.lps[id].parked = true;
            shared.cvs[id].wait(&mut g);
            g.lps[id].parked = false;
        }
    }

    let handle = CoopHandle {
        id,
        n,
        channels,
        shared: shared.clone(),
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(handle)));

    let mut g = shared.state.lock();
    let clk = SimTime::from_ps(g.lps[id].clock);
    g.lps[id].status = Status::Done;
    g.finished += 1;
    match result {
        Ok(r) => {
            // Hand the token onward.
            match g.pop_next() {
                Some(next) => {
                    shared.grant(&mut g, next);
                }
                None if g.finished < g.lps.len() => {
                    let mut msg = String::from("deadlock after LP finish");
                    if let Some(obs) = &shared.observer {
                        if let Some(extra) = obs.on_deadlock(&g.stalls()) {
                            msg.push('\n');
                            msg.push_str(&extra);
                        }
                    }
                    g.poisoned = Some(msg);
                    for cv in &shared.cvs {
                        cv.notify_all();
                    }
                }
                None => {}
            }
            drop(g);
            Ok((r, clk))
        }
        Err(p) => {
            let original = g.poisoned.is_none();
            if original {
                g.poisoned = Some(format!("LP {id} panicked"));
            }
            for cv in &shared.cvs {
                cv.notify_all();
            }
            drop(g);
            Err((p, original))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lp_advances_time() {
        let out = run::<u64, _, _>(1, 1, |h| {
            h.advance(SimTime::from_ns(100));
            h.advance(SimTime::from_ns(50));
            h.now()
        });
        assert_eq!(out.values[0], SimTime::from_ns(150));
        assert_eq!(out.makespan, SimTime::from_ns(150));
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let out = run::<u64, _, _>(2, 1, |h| {
            let wire = SimTime::from_ns(21);
            if h.id() == 0 {
                h.send(1, 0, 1, wire);
                let _ = h.recv(0);
                h.now()
            } else {
                let v = h.recv(0);
                h.send(0, 0, v, wire);
                h.now()
            }
        });
        assert_eq!(out.values[0], SimTime::from_ns(42));
        assert_eq!(out.values[1], SimTime::from_ns(21));
    }

    #[test]
    fn min_clock_lp_runs_first() {
        // LP1 computes for 1 us then sends; LP0 computes 10 ns and sends.
        // LP2 must receive LP0's message first even though LP1 has a
        // smaller id among senders... ordering is by arrival time.
        let out = run::<(usize, u64), _, _>(3, 1, |h| match h.id() {
            0 => {
                h.advance(SimTime::from_ns(10));
                h.send(2, 0, (0, h.now().ps()), SimTime::from_ns(5));
                0
            }
            1 => {
                h.advance(SimTime::from_us(1));
                h.send(2, 0, (1, h.now().ps()), SimTime::from_ns(5));
                0
            }
            _ => {
                let (first, _) = h.recv(0);
                let (second, _) = h.recv(0);
                assert_eq!(first, 0);
                assert_eq!(second, 1);
                h.now().ps() as usize
            }
        });
        // LP2 finishes at LP1's send arrival: 1 us + 5 ns.
        assert_eq!(out.values[2], 1_005_000);
    }

    #[test]
    fn arrival_order_not_send_order() {
        // A sends early with huge latency; B sends later with tiny
        // latency. Receiver must see B's message first.
        let out = run::<char, _, _>(3, 1, |h| match h.id() {
            0 => {
                h.send(2, 0, 'a', SimTime::from_ns(1000));
                ' '
            }
            1 => {
                h.advance(SimTime::from_ns(50));
                h.send(2, 0, 'b', SimTime::from_ns(1));
                ' '
            }
            _ => {
                let first = h.recv(0);
                let second = h.recv(0);
                assert_eq!(h.now(), SimTime::from_ns(1000));
                assert_eq!((first, second), ('b', 'a'));
                'k'
            }
        });
        drop(out);
    }

    #[test]
    fn try_recv_sees_only_arrived_messages() {
        let out = run::<u8, _, _>(2, 1, |h| {
            if h.id() == 0 {
                h.send(1, 0, 7, SimTime::from_ns(100));
                0
            } else {
                // Let LP0 run and send.
                h.advance(SimTime::from_ns(10));
                assert!(h.try_recv(0).is_none(), "message still in flight");
                assert!(!h.poll(0));
                h.advance(SimTime::from_ns(100));
                assert!(h.poll(0));
                h.try_recv(0).unwrap()
            }
        });
        assert_eq!(out.values[1], 7);
    }

    #[test]
    fn channels_are_independent() {
        let out = run::<u32, _, _>(2, 2, |h| {
            if h.id() == 0 {
                h.send(1, 1, 11, SimTime::ZERO);
                h.send(1, 0, 22, SimTime::ZERO);
                0
            } else {
                let a = h.recv(0);
                let b = h.recv(1);
                a * 100 + b
            }
        });
        assert_eq!(out.values[1], 2211);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            run::<u64, _, _>(4, 1, |h| {
                let next = (h.id() + 1) % h.n();
                for round in 0..8u64 {
                    if h.id() == 0 {
                        h.send(next, 0, round, SimTime::from_ns(3));
                        let _ = h.recv(0);
                    } else {
                        let v = h.recv(0);
                        h.advance(SimTime::from_ns(1 + h.id() as u64));
                        h.send(next, 0, v, SimTime::from_ns(3));
                    }
                }
                h.now().ps()
            })
            .values
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn send_to_self_arrives_in_future() {
        let out = run::<u8, _, _>(1, 1, |h| {
            h.send(0, 0, 9, SimTime::from_ns(40));
            let v = h.recv(0);
            assert_eq!(h.now(), SimTime::from_ns(40));
            v
        });
        assert_eq!(out.values[0], 9);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        run::<u8, _, _>(2, 1, |h| {
            let _ = h.recv(0); // both block forever
        });
    }

    #[test]
    fn deadlock_observer_sees_stalls_and_extends_the_message() {
        use std::sync::atomic::{AtomicBool, Ordering};

        struct Obs {
            fired: AtomicBool,
        }
        impl CoopObserver for Obs {
            fn on_deadlock(&self, lps: &[LpStall]) -> Option<String> {
                self.fired.store(true, Ordering::Release);
                assert_eq!(lps.len(), 2);
                assert!(lps[0].done, "LP0 returned before the deadlock");
                assert_eq!(lps[1].blocked_on, Some(0));
                Some(format!("observer: {} LPs parked", lps.len()))
            }
        }
        let obs = Arc::new(Obs { fired: AtomicBool::new(false) });
        let obs2 = obs.clone();
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            run_observed::<u8, _, _>(2, 1, Some(obs2), |h| {
                if h.id() == 1 {
                    let _ = h.recv(0); // blocks forever
                }
            })
        }));
        let p = r.expect_err("deadlock must panic");
        let msg = p.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("deadlock"), "kept the deadlock marker: {msg}");
        assert!(msg.contains("observer: 2 LPs parked"), "observer text appended: {msg}");
        assert!(obs.fired.load(Ordering::Acquire));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn lp_panic_propagates() {
        run::<u8, _, _>(2, 1, |h| {
            if h.id() == 1 {
                panic!("boom");
            }
            // LP0 blocks; must be woken by the poison, not hang.
            let _ = h.recv(0);
        });
    }

    #[test]
    fn makespan_is_max_clock() {
        let out = run::<u8, _, _>(3, 1, |h| {
            h.advance(SimTime::from_ns(10 * (h.id() as u64 + 1)));
        });
        assert_eq!(out.makespan, SimTime::from_ns(30));
        assert_eq!(out.clocks[0], SimTime::from_ns(10));
    }

    #[test]
    fn with_global_runs_closure() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        run::<u8, _, _>(2, 1, move |h| {
            h.with_global(|| c2.fetch_add(1, Ordering::Relaxed));
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn mailbox_pop_min_is_exact_arrival_seq_order() {
        // Direct regression for the old O(n)-scan pop: flood one
        // mailbox with pseudo-random arrivals (including same-instant
        // collisions) and drain — order must be exactly (arrival, seq).
        let mut mb: Mailbox<u32> = Mailbox::new();
        let mut x = 0x853c49e6748fea9bu64;
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for seq in 0..5000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let arrival = x % 257; // dense range forces many ties
            mb.push(arrival, seq, seq as u32);
            expect.push((arrival, seq));
        }
        expect.sort_unstable();
        assert_eq!(mb.min_arrival(), Some(expect[0].0));
        for (arrival, seq) in expect {
            let (a, m) = mb.pop_min().expect("mailbox drained early");
            assert_eq!((a, m as u64), (arrival, seq));
        }
        assert!(mb.pop_min().is_none());
    }

    #[test]
    fn many_queued_messages_drain_in_arrival_order() {
        // Scheduler-level variant: 8 senders flood one receiver channel
        // with staggered latencies before the receiver wakes; recv must
        // return nondecreasing arrivals (carried in the payload).
        const PER_SENDER: u64 = 250;
        let n = 9;
        let out = run::<u64, _, _>(n, 1, move |h| {
            if h.id() == 0 {
                // Park past every arrival so all messages are queued.
                h.advance(SimTime::from_us(100));
                let mut last = 0u64;
                let mut count = 0u64;
                while count < (n as u64 - 1) * PER_SENDER {
                    let arrival = h.recv(0);
                    assert!(
                        arrival >= last,
                        "arrival order violated: {arrival} after {last}"
                    );
                    last = arrival;
                    count += 1;
                }
                count
            } else {
                let mut x = (h.id() as u64).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..PER_SENDER {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let lat = SimTime::from_ps(x % 5_000_000);
                    h.send(0, 0, h.now().ps() + lat.ps(), lat);
                }
                0
            }
        });
        assert_eq!(out.values[0], (n as u64 - 1) * PER_SENDER);
    }

    #[test]
    fn cycle_box_runs_lps_in_id_order_within_a_box() {
        use std::sync::Mutex as StdMutex;
        // Three LPs each take 3 small steps inside one 1 us box. Cycle-box
        // runs each LP to the box edge before the next id; event-driven
        // interleaves by exact clock.
        let log = Arc::new(StdMutex::new(Vec::new()));
        let body = |log: Arc<StdMutex<Vec<usize>>>| {
            move |h: CoopHandle<u8>| {
                for _ in 0..3 {
                    log.lock().unwrap().push(h.id());
                    h.advance(SimTime::from_ns(10));
                }
            }
        };
        let l = log.clone();
        run_mode::<u8, _, _>(
            3,
            1,
            SchedMode::CycleBox { tick: SimTime::from_us(1) },
            None,
            body(l),
        );
        assert_eq!(*log.lock().unwrap(), vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);

        log.lock().unwrap().clear();
        let l = log.clone();
        run_mode::<u8, _, _>(3, 1, SchedMode::EventDriven, None, body(l));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn cycle_box_converges_with_event_driven_on_seeded_traffic() {
        use std::sync::Mutex as StdMutex;
        // Seeded random all-to-all traffic: every LP sends R messages
        // (dests chosen so each LP also receives exactly R), then drains
        // its mailbox. The received multiset per LP must be identical
        // across modes (final-state convergence) and each mode must be
        // deterministic run-to-run including message order.
        const N: usize = 6;
        const R: u64 = 40;
        #[derive(Default, Clone, PartialEq, Debug)]
        struct PerLp {
            sum: u64,
            xor: u64,
            digest: u64, // order-sensitive
        }
        let run_with = |mode: SchedMode| {
            let acc = Arc::new(StdMutex::new(vec![PerLp::default(); N]));
            let a2 = acc.clone();
            run_mode::<u64, _, _>(N, 1, mode, None, move |h| {
                let id = h.id();
                let mut x = (id as u64 + 1) * 0x2545f4914f6cdd1d;
                for k in 0..R {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let dest = (id + 1 + (k as usize % (N - 1))) % N;
                    let lat = SimTime::from_ps(x % 800_000);
                    h.send(dest, 0, x, lat);
                    if x.is_multiple_of(3) {
                        h.advance(SimTime::from_ps(x % 50_000));
                    }
                }
                for _ in 0..R {
                    let v = h.recv(0);
                    let mut g = a2.lock().unwrap();
                    let p = &mut g[id];
                    p.sum = p.sum.wrapping_add(v);
                    p.xor ^= v;
                    p.digest = p.digest.wrapping_mul(31).wrapping_add(v);
                }
            });
            Arc::try_unwrap(acc).unwrap().into_inner().unwrap()
        };
        let ed1 = run_with(SchedMode::EventDriven);
        let ed2 = run_with(SchedMode::EventDriven);
        assert_eq!(ed1, ed2, "event-driven must be deterministic");
        let tick = SimTime::from_ns(1000);
        let cb1 = run_with(SchedMode::CycleBox { tick });
        let cb2 = run_with(SchedMode::CycleBox { tick });
        assert_eq!(cb1, cb2, "cycle-box must be deterministic");
        for id in 0..N {
            assert_eq!(
                (ed1[id].sum, ed1[id].xor),
                (cb1[id].sum, cb1[id].xor),
                "LP {id}: received multiset differs between modes"
            );
        }
    }

    #[test]
    fn cycle_box_deadlock_still_detected() {
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            run_mode::<u8, _, _>(
                2,
                1,
                SchedMode::CycleBox { tick: SimTime::from_ns(100) },
                None,
                |h| {
                    let _ = h.recv(0); // both block forever
                },
            )
        }));
        let p = r.expect_err("deadlock must panic");
        let msg = p.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("deadlock"), "got: {msg}");
    }
}
