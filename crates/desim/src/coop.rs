//! Virtual-time cooperative scheduler.
//!
//! Each simulated processing element (LP — *logical process*) runs as a
//! real OS thread with its own virtual clock, but **exactly one LP
//! executes at any instant** and the scheduler always hands control to
//! the LP with the smallest *effective clock*:
//!
//! * a runnable LP's effective clock is its own clock;
//! * an LP blocked on `recv` becomes runnable when its mailbox is
//!   non-empty, with effective clock `max(own clock, earliest arrival)`;
//! * finished LPs never run again.
//!
//! Because the minimum-clock LP runs first and message latencies are
//! non-negative, no future send can ever arrive before the effective
//! clock of the LP being resumed — the classic conservative-simulation
//! argument — so blocking protocol code (token barriers, collectives,
//! request/reply) executes under simulated time with *sequential,
//! deterministic* semantics while being written in ordinary blocking
//! style.
//!
//! # Example
//!
//! ```
//! use desim::{coop, SimTime};
//!
//! // Two PEs play ping-pong with a 21 ns one-way wire latency.
//! let out = coop::run(2, 1, |h| {
//!     let wire = SimTime::from_ns(21);
//!     if h.id() == 0 {
//!         h.send(1, 0, 42u64, wire);
//!         let _ = h.recv(0);
//!         h.now()
//!     } else {
//!         let v = h.recv(0);
//!         h.send(0, 0, v + 1, wire);
//!         h.now()
//!     }
//! });
//! // PE0 observes the round trip: 42 ns.
//! assert_eq!(out.values[0], SimTime::from_ns(42));
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use substrate::sync::{Condvar, Mutex};

use crate::time::SimTime;

/// Per-LP status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Runnable (or currently running).
    Ready,
    /// Blocked in `recv` on the given channel.
    BlockedRecv(usize),
    /// Function returned.
    Done,
}

struct Mailbox<M> {
    /// (arrival, seq, message) — popped by minimum (arrival, seq).
    msgs: Vec<(u64, u64, M)>,
}

impl<M> Mailbox<M> {
    fn new() -> Self {
        Self { msgs: Vec::new() }
    }

    fn min_arrival(&self) -> Option<u64> {
        self.msgs.iter().map(|(a, _, _)| *a).min()
    }

    fn pop_min(&mut self) -> Option<(u64, M)> {
        if self.msgs.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.msgs.len() {
            let (a, s, _) = &self.msgs[i];
            let (ba, bs, _) = &self.msgs[best];
            if (*a, *s) < (*ba, *bs) {
                best = i;
            }
        }
        let (a, _, m) = self.msgs.swap_remove(best);
        Some((a, m))
    }
}

struct LpState<M> {
    clock: u64,
    status: Status,
    boxes: Vec<Mailbox<M>>,
}

struct SchedState<M> {
    lps: Vec<LpState<M>>,
    /// LP currently holding the execution token.
    running: usize,
    finished: usize,
    seq: u64,
    /// Set when an LP panicked or a deadlock was detected.
    poisoned: Option<String>,
}

/// Snapshot of one LP's scheduling state at deadlock-detection time,
/// handed to a [`CoopObserver`] so an engine-level watchdog can render
/// a diagnosis in its own vocabulary.
#[derive(Clone, Debug)]
pub struct LpStall {
    /// LP id.
    pub id: usize,
    /// Whether the LP's function has already returned.
    pub done: bool,
    /// The channel the LP is parked in `recv` on, if any.
    pub blocked_on: Option<usize>,
    /// The LP's virtual clock at detection time.
    pub clock: SimTime,
    /// Per-channel counts of queued (possibly future-arrival) messages.
    pub queued: Vec<usize>,
}

/// Deadlock observer: invoked exactly once when the scheduler detects
/// that no LP can ever run again (the virtual event queue drained while
/// unfinished LPs are parked). Any returned text is appended to the
/// scheduler's poison/panic message.
///
/// Called with the scheduler lock held — implementations must not call
/// back into the scheduler (no `CoopHandle` methods) and should only
/// format a report from the snapshot plus their own state.
pub trait CoopObserver: Send + Sync {
    fn on_deadlock(&self, lps: &[LpStall]) -> Option<String>;
}

impl<M> SchedState<M> {
    fn effective(&self, id: usize) -> Option<u64> {
        let lp = &self.lps[id];
        match lp.status {
            Status::Ready => Some(lp.clock),
            Status::BlockedRecv(ch) => lp.boxes[ch]
                .min_arrival()
                .map(|a| a.max(lp.clock)),
            Status::Done => None,
        }
    }

    /// LP with the minimum effective clock (ties to the smallest id).
    fn pick(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for id in 0..self.lps.len() {
            if let Some(e) = self.effective(id) {
                if best.is_none_or(|(be, bid)| (e, id) < (be, bid)) {
                    best = Some((e, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Per-LP stall snapshot for the deadlock observer.
    fn stalls(&self) -> Vec<LpStall> {
        self.lps
            .iter()
            .enumerate()
            .map(|(id, lp)| LpStall {
                id,
                done: matches!(lp.status, Status::Done),
                blocked_on: match lp.status {
                    Status::BlockedRecv(ch) => Some(ch),
                    _ => None,
                },
                clock: SimTime::from_ps(lp.clock),
                queued: lp.boxes.iter().map(|b| b.msgs.len()).collect(),
            })
            .collect()
    }
}

struct Shared<M> {
    state: Mutex<SchedState<M>>,
    cvs: Vec<Condvar>,
    observer: Option<Arc<dyn CoopObserver>>,
}

impl<M> Shared<M> {
    /// Hand the token to the next LP (which may be `self_id` again).
    /// Must be called with the lock held; returns holding the lock, with
    /// the token back at `self_id`.
    fn reschedule<'a>(
        &'a self,
        mut guard: substrate::sync::MutexGuard<'a, SchedState<M>>,
        self_id: usize,
    ) -> substrate::sync::MutexGuard<'a, SchedState<M>> {
        loop {
            if let Some(msg) = &guard.poisoned {
                let msg = msg.clone();
                drop(guard);
                panic!("coop scheduler poisoned: {msg}");
            }
            match guard.pick() {
                Some(next) if next == self_id => {
                    guard.running = self_id;
                    return guard;
                }
                Some(next) => {
                    guard.running = next;
                    self.cvs[next].notify_one();
                    self.cvs[self_id].wait(&mut guard);
                    // Woken: either we hold the token or we were poisoned.
                    if guard.running == self_id && guard.poisoned.is_none() {
                        return guard;
                    }
                    // Re-check (spurious wake or poison).
                    if guard.poisoned.is_some() {
                        continue;
                    }
                    if guard.running != self_id {
                        // Spurious wakeup — wait again.
                        continue;
                    }
                }
                None => {
                    if guard.finished == guard.lps.len() {
                        // Everyone done; nothing to schedule. We only get
                        // here from a finished LP's final yield.
                        guard.running = usize::MAX;
                        return guard;
                    }
                    let blocked: Vec<usize> = (0..guard.lps.len())
                        .filter(|&i| matches!(guard.lps[i].status, Status::BlockedRecv(_)))
                        .collect();
                    let mut msg =
                        format!("deadlock: no runnable LP; blocked LPs: {blocked:?}");
                    if let Some(obs) = &self.observer {
                        if let Some(extra) = obs.on_deadlock(&guard.stalls()) {
                            msg.push('\n');
                            msg.push_str(&extra);
                        }
                    }
                    guard.poisoned = Some(msg);
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                    let msg = guard.poisoned.clone().unwrap();
                    drop(guard);
                    panic!("coop scheduler poisoned: {msg}");
                }
            }
        }
    }
}

/// Handle held by each LP; all simulated-time operations go through it.
pub struct CoopHandle<M> {
    id: usize,
    n: usize,
    channels: usize,
    shared: Arc<Shared<M>>,
}

impl<M: Send> CoopHandle<M> {
    /// This LP's id (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of LPs in the simulation.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of channels per LP.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// This LP's current virtual clock.
    pub fn now(&self) -> SimTime {
        let g = self.shared.state.lock();
        SimTime::from_ps(g.lps[self.id].clock)
    }

    /// Advance this LP's clock by `dt` and yield to the scheduler.
    pub fn advance(&self, dt: SimTime) {
        let mut g = self.shared.state.lock();
        g.lps[self.id].clock += dt.ps();
        let g = self.shared.reschedule(g, self.id);
        drop(g);
    }

    /// Advance this LP's clock to at least `t` and yield.
    pub fn advance_to(&self, t: SimTime) {
        let mut g = self.shared.state.lock();
        let c = &mut g.lps[self.id].clock;
        *c = (*c).max(t.ps());
        let g = self.shared.reschedule(g, self.id);
        drop(g);
    }

    /// Yield without advancing time (lets equal-clock LPs with smaller
    /// ids run).
    pub fn yield_now(&self) {
        let g = self.shared.state.lock();
        let g = self.shared.reschedule(g, self.id);
        drop(g);
    }

    /// Send `msg` to LP `dest` on `channel`; it arrives at
    /// `now + latency`. Sending never blocks and does not advance the
    /// sender's clock (charge any software overhead with [`advance`]
    /// separately).
    ///
    /// [`advance`]: CoopHandle::advance
    pub fn send(&self, dest: usize, channel: usize, msg: M, latency: SimTime) {
        let mut g = self.shared.state.lock();
        assert!(dest < g.lps.len(), "send to unknown LP {dest}");
        assert!(channel < self.channels, "send on unknown channel {channel}");
        let arrival = g.lps[self.id].clock + latency.ps();
        let seq = g.seq;
        g.seq += 1;
        g.lps[dest].boxes[channel].msgs.push((arrival, seq, msg));
        // The sender keeps the token: its effective clock is still the
        // minimum (arrival >= our clock for latency >= 0).
    }

    /// Blocking receive on `channel`: returns the earliest-arriving
    /// message, advancing this LP's clock to the arrival time if it is
    /// in the future.
    pub fn recv(&self, channel: usize) -> M {
        assert!(channel < self.channels, "recv on unknown channel {channel}");
        let mut g = self.shared.state.lock();
        g.lps[self.id].status = Status::BlockedRecv(channel);
        let mut g = self.shared.reschedule(g, self.id);
        // We were resumed: the scheduler guarantees the mailbox is
        // non-empty (effective clock required an arrival).
        let (arrival, msg) = g.lps[self.id].boxes[channel]
            .pop_min()
            .expect("scheduler resumed recv with empty mailbox");
        let lp = &mut g.lps[self.id];
        lp.clock = lp.clock.max(arrival);
        lp.status = Status::Ready;
        drop(g);
        msg
    }

    /// Non-blocking receive: a message whose arrival time is ≤ now, if
    /// any. (Messages "in flight" with future arrivals are not visible.)
    pub fn try_recv(&self, channel: usize) -> Option<M> {
        let mut g = self.shared.state.lock();
        let now = g.lps[self.id].clock;
        let mb = &mut g.lps[self.id].boxes[channel];
        match mb.min_arrival() {
            Some(a) if a <= now => mb.pop_min().map(|(_, m)| m),
            _ => None,
        }
    }

    /// Whether a message is available right now (arrival ≤ now).
    pub fn poll(&self, channel: usize) -> bool {
        let g = self.shared.state.lock();
        let now = g.lps[self.id].clock;
        g.lps[self.id].boxes[channel]
            .min_arrival()
            .is_some_and(|a| a <= now)
    }

    /// Run `f` with the scheduler lock held — used by engines to mutate
    /// simulation-global state (resource banks, shared memory models)
    /// deterministically. Since only one LP ever runs at a time, the lock
    /// is uncontended; this is about atomicity with respect to scheduling,
    /// not mutual exclusion between LPs.
    pub fn with_global<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.shared.state.lock();
        f()
    }
}

/// Result of a cooperative run.
#[derive(Debug)]
pub struct CoopResult<R> {
    /// Per-LP return values, indexed by LP id.
    pub values: Vec<R>,
    /// Per-LP final clocks.
    pub clocks: Vec<SimTime>,
    /// The maximum final clock (the simulated makespan).
    pub makespan: SimTime,
}

/// Run `n` LPs, each executing `f(handle)`, under virtual time.
///
/// `channels` is the number of mailbox channels per LP. Returns each LP's
/// result and final clock.
///
/// # Panics
/// Panics if any LP panics or if the simulation deadlocks (every
/// unfinished LP blocked on an empty mailbox).
pub fn run<M, R, F>(n: usize, channels: usize, f: F) -> CoopResult<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    run_observed(n, channels, None, f)
}

/// [`run`] with a deadlock observer: when the simulation deadlocks,
/// `observer.on_deadlock` is invoked once with a per-LP stall snapshot
/// and any text it returns is appended to the poison/panic message —
/// the hook `launch_timed_watched` uses to render a per-PE diagnosis.
pub fn run_observed<M, R, F>(
    n: usize,
    channels: usize,
    observer: Option<Arc<dyn CoopObserver>>,
    f: F,
) -> CoopResult<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    assert!(n > 0, "need at least one LP");
    assert!(channels > 0, "need at least one channel");
    let shared = Arc::new(Shared {
        state: Mutex::new(SchedState {
            lps: (0..n)
                .map(|_| LpState {
                    clock: 0,
                    status: Status::Ready,
                    boxes: (0..channels).map(|_| Mailbox::new()).collect(),
                })
                .collect(),
            running: 0,
            finished: 0,
            seq: 0,
            poisoned: None,
        }),
        cvs: (0..n).map(|_| Condvar::new()).collect(),
        observer,
    });
    let f = &f;

    // Scoped threads: all LPs are joined before `scope` returns, so `f`
    // and any state it borrows only need to outlive the scope — callers
    // can pass closures capturing stack references (the generic
    // `Launcher` relies on this to give every engine one bound set).
    let outcomes: Vec<LpOutcome<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|id| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("coop-lp-{id}"))
                    .spawn_scoped(scope, move || lp_main(id, n, channels, shared, f))
                    .expect("spawn LP thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("LP thread itself must not die"))
            .collect()
    });

    let mut values: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut clocks = vec![SimTime::ZERO; n];
    let mut original_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut secondary_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for (id, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok((r, clk)) => {
                values[id] = Some(r);
                clocks[id] = clk;
            }
            Err((p, original)) => {
                let slot = if original {
                    &mut original_panic
                } else {
                    &mut secondary_panic
                };
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
        }
    }
    // Prefer the panic that started the collapse over the induced
    // "scheduler poisoned" panics of bystander LPs.
    if let Some(p) = original_panic.or(secondary_panic) {
        panic::resume_unwind(p);
    }
    let makespan = clocks.iter().copied().fold(SimTime::ZERO, SimTime::max);
    CoopResult {
        values: values.into_iter().map(|v| v.unwrap()).collect(),
        clocks,
        makespan,
    }
}

/// Error side carries `(payload, was_original_panic)` — bystander LPs die
/// with an induced "poisoned" panic that should not mask the real one.
type LpOutcome<R> = Result<(R, SimTime), (Box<dyn std::any::Any + Send>, bool)>;

fn lp_main<M, R, F>(
    id: usize,
    n: usize,
    channels: usize,
    shared: Arc<Shared<M>>,
    f: &F,
) -> LpOutcome<R>
where
    M: Send,
    R: Send,
    F: Fn(CoopHandle<M>) -> R + Send + Sync,
{
    // Wait for the token before starting (LP 0 starts holding it by
    // construction: pick() with all clocks 0 chooses id 0).
    {
        let mut g = shared.state.lock();
        while g.running != id {
            if g.poisoned.is_some() {
                return Err((Box::new("poisoned before start"), false));
            }
            shared.cvs[id].wait(&mut g);
        }
    }

    let handle = CoopHandle {
        id,
        n,
        channels,
        shared: shared.clone(),
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(handle)));

    let mut g = shared.state.lock();
    let clk = SimTime::from_ps(g.lps[id].clock);
    g.lps[id].status = Status::Done;
    g.finished += 1;
    match result {
        Ok(r) => {
            // Hand the token onward.
            match g.pick() {
                Some(next) => {
                    g.running = next;
                    shared.cvs[next].notify_one();
                }
                None if g.finished < g.lps.len() => {
                    let mut msg = String::from("deadlock after LP finish");
                    if let Some(obs) = &shared.observer {
                        if let Some(extra) = obs.on_deadlock(&g.stalls()) {
                            msg.push('\n');
                            msg.push_str(&extra);
                        }
                    }
                    g.poisoned = Some(msg);
                    for cv in &shared.cvs {
                        cv.notify_all();
                    }
                }
                None => {}
            }
            drop(g);
            Ok((r, clk))
        }
        Err(p) => {
            let original = g.poisoned.is_none();
            if original {
                g.poisoned = Some(format!("LP {id} panicked"));
            }
            for cv in &shared.cvs {
                cv.notify_all();
            }
            drop(g);
            Err((p, original))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lp_advances_time() {
        let out = run::<u64, _, _>(1, 1, |h| {
            h.advance(SimTime::from_ns(100));
            h.advance(SimTime::from_ns(50));
            h.now()
        });
        assert_eq!(out.values[0], SimTime::from_ns(150));
        assert_eq!(out.makespan, SimTime::from_ns(150));
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let out = run::<u64, _, _>(2, 1, |h| {
            let wire = SimTime::from_ns(21);
            if h.id() == 0 {
                h.send(1, 0, 1, wire);
                let _ = h.recv(0);
                h.now()
            } else {
                let v = h.recv(0);
                h.send(0, 0, v, wire);
                h.now()
            }
        });
        assert_eq!(out.values[0], SimTime::from_ns(42));
        assert_eq!(out.values[1], SimTime::from_ns(21));
    }

    #[test]
    fn min_clock_lp_runs_first() {
        // LP1 computes for 1 us then sends; LP0 computes 10 ns and sends.
        // LP2 must receive LP0's message first even though LP1 has a
        // smaller id among senders... ordering is by arrival time.
        let out = run::<(usize, u64), _, _>(3, 1, |h| match h.id() {
            0 => {
                h.advance(SimTime::from_ns(10));
                h.send(2, 0, (0, h.now().ps()), SimTime::from_ns(5));
                0
            }
            1 => {
                h.advance(SimTime::from_us(1));
                h.send(2, 0, (1, h.now().ps()), SimTime::from_ns(5));
                0
            }
            _ => {
                let (first, _) = h.recv(0);
                let (second, _) = h.recv(0);
                assert_eq!(first, 0);
                assert_eq!(second, 1);
                h.now().ps() as usize
            }
        });
        // LP2 finishes at LP1's send arrival: 1 us + 5 ns.
        assert_eq!(out.values[2], 1_005_000);
    }

    #[test]
    fn arrival_order_not_send_order() {
        // A sends early with huge latency; B sends later with tiny
        // latency. Receiver must see B's message first.
        let out = run::<char, _, _>(3, 1, |h| match h.id() {
            0 => {
                h.send(2, 0, 'a', SimTime::from_ns(1000));
                ' '
            }
            1 => {
                h.advance(SimTime::from_ns(50));
                h.send(2, 0, 'b', SimTime::from_ns(1));
                ' '
            }
            _ => {
                let first = h.recv(0);
                let second = h.recv(0);
                assert_eq!(h.now(), SimTime::from_ns(1000));
                assert_eq!((first, second), ('b', 'a'));
                'k'
            }
        });
        drop(out);
    }

    #[test]
    fn try_recv_sees_only_arrived_messages() {
        let out = run::<u8, _, _>(2, 1, |h| {
            if h.id() == 0 {
                h.send(1, 0, 7, SimTime::from_ns(100));
                0
            } else {
                // Let LP0 run and send.
                h.advance(SimTime::from_ns(10));
                assert!(h.try_recv(0).is_none(), "message still in flight");
                assert!(!h.poll(0));
                h.advance(SimTime::from_ns(100));
                assert!(h.poll(0));
                h.try_recv(0).unwrap()
            }
        });
        assert_eq!(out.values[1], 7);
    }

    #[test]
    fn channels_are_independent() {
        let out = run::<u32, _, _>(2, 2, |h| {
            if h.id() == 0 {
                h.send(1, 1, 11, SimTime::ZERO);
                h.send(1, 0, 22, SimTime::ZERO);
                0
            } else {
                let a = h.recv(0);
                let b = h.recv(1);
                a * 100 + b
            }
        });
        assert_eq!(out.values[1], 2211);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            run::<u64, _, _>(4, 1, |h| {
                let next = (h.id() + 1) % h.n();
                for round in 0..8u64 {
                    if h.id() == 0 {
                        h.send(next, 0, round, SimTime::from_ns(3));
                        let _ = h.recv(0);
                    } else {
                        let v = h.recv(0);
                        h.advance(SimTime::from_ns(1 + h.id() as u64));
                        h.send(next, 0, v, SimTime::from_ns(3));
                    }
                }
                h.now().ps()
            })
            .values
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn send_to_self_arrives_in_future() {
        let out = run::<u8, _, _>(1, 1, |h| {
            h.send(0, 0, 9, SimTime::from_ns(40));
            let v = h.recv(0);
            assert_eq!(h.now(), SimTime::from_ns(40));
            v
        });
        assert_eq!(out.values[0], 9);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        run::<u8, _, _>(2, 1, |h| {
            let _ = h.recv(0); // both block forever
        });
    }

    #[test]
    fn deadlock_observer_sees_stalls_and_extends_the_message() {
        use std::sync::atomic::{AtomicBool, Ordering};

        struct Obs {
            fired: AtomicBool,
        }
        impl CoopObserver for Obs {
            fn on_deadlock(&self, lps: &[LpStall]) -> Option<String> {
                self.fired.store(true, Ordering::Release);
                assert_eq!(lps.len(), 2);
                assert!(lps[0].done, "LP0 returned before the deadlock");
                assert_eq!(lps[1].blocked_on, Some(0));
                Some(format!("observer: {} LPs parked", lps.len()))
            }
        }
        let obs = Arc::new(Obs { fired: AtomicBool::new(false) });
        let obs2 = obs.clone();
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            run_observed::<u8, _, _>(2, 1, Some(obs2), |h| {
                if h.id() == 1 {
                    let _ = h.recv(0); // blocks forever
                }
            })
        }));
        let p = r.expect_err("deadlock must panic");
        let msg = p.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("deadlock"), "kept the deadlock marker: {msg}");
        assert!(msg.contains("observer: 2 LPs parked"), "observer text appended: {msg}");
        assert!(obs.fired.load(Ordering::Acquire));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn lp_panic_propagates() {
        run::<u8, _, _>(2, 1, |h| {
            if h.id() == 1 {
                panic!("boom");
            }
            // LP0 blocks; must be woken by the poison, not hang.
            let _ = h.recv(0);
        });
    }

    #[test]
    fn makespan_is_max_clock() {
        let out = run::<u8, _, _>(3, 1, |h| {
            h.advance(SimTime::from_ns(10 * (h.id() as u64 + 1)));
        });
        assert_eq!(out.makespan, SimTime::from_ns(30));
        assert_eq!(out.clocks[0], SimTime::from_ns(10));
    }

    #[test]
    fn with_global_runs_closure() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        run::<u8, _, _>(2, 1, move |h| {
            h.with_global(|| c2.fetch_add(1, Ordering::Relaxed));
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }
}
