//! Busy-until FIFO servers for modeling contended hardware.
//!
//! A [`Resource`] models a serial server (a home tile's cache port, a DDR
//! controller): each request occupies the server for a service duration,
//! and requests queue in arrival order. Because the cooperative scheduler
//! always runs the minimum-clock process, requests are issued in
//! nondecreasing time order, so a simple `free_at` watermark implements an
//! exact FIFO queue.

use crate::time::SimTime;

/// A single-server FIFO resource.
#[derive(Clone, Debug, Default)]
pub struct Resource {
    free_at: SimTime,
    busy: SimTime,
    served: u64,
}

impl Resource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `service` time starting no earlier than `now`.
    ///
    /// Returns the completion time: `max(now, free_at) + service`.
    pub fn acquire(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let start = now.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        self.served += 1;
        done
    }

    /// Earliest time a new request could start service.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over the interval `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.ps() as f64 / horizon.ps() as f64
    }
}

/// A bank of resources indexed by id (e.g. one per home tile).
#[derive(Clone, Debug)]
pub struct ResourceBank {
    servers: Vec<Resource>,
}

impl ResourceBank {
    pub fn new(n: usize) -> Self {
        Self {
            servers: vec![Resource::new(); n],
        }
    }

    pub fn len(&self) -> usize {
        self.servers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    pub fn get(&self, i: usize) -> &Resource {
        &self.servers[i]
    }

    /// Acquire on server `i`.
    pub fn acquire(&mut self, i: usize, now: SimTime, service: SimTime) -> SimTime {
        self.servers[i].acquire(now, service)
    }

    /// Spread a total service demand across all servers (hash-for-home
    /// style): each server receives `total / n`, and the completion time
    /// is the max across servers. Remainder picoseconds go to server 0.
    pub fn acquire_spread(&mut self, now: SimTime, total: SimTime) -> SimTime {
        let n = self.servers.len() as u64;
        assert!(n > 0);
        let share = SimTime::from_ps(total.ps() / n);
        let rem = SimTime::from_ps(total.ps() % n);
        let mut done = SimTime::ZERO;
        for (i, s) in self.servers.iter_mut().enumerate() {
            let svc = if i == 0 { share + rem } else { share };
            done = done.max(s.acquire(now, svc));
        }
        done
    }

    /// Reset all servers to idle.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            *s = Resource::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = Resource::new();
        let done = r.acquire(SimTime::from_ns(10), SimTime::from_ns(5));
        assert_eq!(done, SimTime::from_ns(15));
        assert_eq!(r.free_at(), SimTime::from_ns(15));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut r = Resource::new();
        r.acquire(SimTime::ZERO, SimTime::from_ns(10));
        // Second request arrives at 3 but starts at 10.
        let done = r.acquire(SimTime::from_ns(3), SimTime::from_ns(4));
        assert_eq!(done, SimTime::from_ns(14));
        assert_eq!(r.served(), 2);
        assert_eq!(r.busy_time(), SimTime::from_ns(14));
    }

    #[test]
    fn utilization() {
        let mut r = Resource::new();
        r.acquire(SimTime::ZERO, SimTime::from_ns(25));
        assert!((r.utilization(SimTime::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn bank_spread_balances_demand() {
        let mut b = ResourceBank::new(4);
        // 40 ns of demand over 4 servers = 10 ns each.
        let done = b.acquire_spread(SimTime::ZERO, SimTime::from_ns(40));
        assert_eq!(done, SimTime::from_ns(10));
        // A second spread queues behind the first.
        let done2 = b.acquire_spread(SimTime::ZERO, SimTime::from_ns(40));
        assert_eq!(done2, SimTime::from_ns(20));
    }

    #[test]
    fn bank_spread_remainder_goes_to_server_zero() {
        let mut b = ResourceBank::new(3);
        let done = b.acquire_spread(SimTime::ZERO, SimTime::from_ps(10));
        // 10 / 3 = 3 with remainder 1: server 0 serves 4 ps.
        assert_eq!(done, SimTime::from_ps(4));
        assert_eq!(b.get(0).busy_time(), SimTime::from_ps(4));
        assert_eq!(b.get(1).busy_time(), SimTime::from_ps(3));
    }

    #[test]
    fn bank_reset() {
        let mut b = ResourceBank::new(2);
        b.acquire(0, SimTime::ZERO, SimTime::from_ns(5));
        b.reset();
        assert_eq!(b.get(0).free_at(), SimTime::ZERO);
        assert_eq!(b.get(0).served(), 0);
    }
}
