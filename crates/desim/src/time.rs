//! Simulated time as integer picoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in picoseconds.
///
/// Picoseconds keep both modeled clock grids exact: one TILE-Gx cycle is
/// 1000 ps and one TILEPro cycle is 1429 ps (rounded once, consistently,
/// in `tile-arch`), so repeated additions never accumulate float error
/// and runs are bit-for-bit reproducible.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    pub const fn ps(self) -> u64 {
        self.0
    }

    pub fn ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn s_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating difference (durations can't be negative).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.s_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.us_f64())
        } else {
            write!(f, "{:.3}ns", self.ns_f64())
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_ns(3).ps(), 3_000);
        assert_eq!(SimTime::from_us(2).ps(), 2_000_000);
        assert_eq!(SimTime::from_ps(1500).ns_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).ps(), 14_000);
        assert_eq!((a - b).ps(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.ps(), 14_000);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_ps(500)), "0.500ns");
        assert_eq!(format!("{}", SimTime::from_us(3)), "3.000us");
        assert_eq!(format!("{}", SimTime::from_ps(2_500_000_000_000)), "2.500000s");
    }
}
