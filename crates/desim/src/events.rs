//! A classic closure-driven event queue.
//!
//! Used by open-loop models (e.g. cache warm-up sweeps and unit tests of
//! the resource servers). Closed-loop protocol simulation uses the
//! cooperative scheduler in [`crate::coop`] instead.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

type Event<'a> = Box<dyn FnOnce(&mut Sim<'a>) + 'a>;

/// Sequential discrete-event simulator with a closure per event.
///
/// Events scheduled for the same instant fire in insertion order, which
/// keeps runs deterministic.
pub struct Sim<'a> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    slots: Vec<Option<Event<'a>>>,
    executed: u64,
}

impl<'a> Default for Sim<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Sim<'a> {
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<'a>) + 'a) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.slots.push(Some(Box::new(f)));
        self.queue.push(Reverse((at, seq)));
    }

    /// Schedule `f` to run `after` from now.
    pub fn schedule_in(&mut self, after: SimTime, f: impl FnOnce(&mut Sim<'a>) + 'a) {
        self.schedule_at(self.now + after, f);
    }

    /// Run until the queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run events with time ≤ `until` (events beyond stay queued).
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        while let Some(Reverse((t, _))) = self.queue.peek() {
            if *t > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
        self.now
    }

    /// Execute the next event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((t, seq))) = self.queue.pop() else {
            return false;
        };
        self.now = t;
        let f = self.slots[seq as usize].take().expect("event fired twice");
        self.executed += 1;
        f(self);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(t), move |s| {
                log.borrow_mut().push((s.now().ps(), tag));
            });
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![(10_000, 'a'), (20_000, 'b'), (30_000, 'c')]
        );
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for tag in ['x', 'y', 'z'] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(5), move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Sim::new();
        fn tick(s: &mut Sim<'_>, hits: Rc<RefCell<u32>>, left: u32) {
            *hits.borrow_mut() += 1;
            if left > 0 {
                s.schedule_in(SimTime::from_ns(1), move |s| tick(s, hits, left - 1));
            }
        }
        let h = hits.clone();
        sim.schedule_at(SimTime::ZERO, move |s| tick(s, h, 9));
        let end = sim.run();
        assert_eq!(*hits.borrow(), 10);
        assert_eq!(end, SimTime::from_ns(9));
        assert_eq!(sim.executed(), 10);
    }

    #[test]
    fn run_until_stops_early() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for t in [5u64, 15, 25] {
            let fired = fired.clone();
            sim.schedule_at(SimTime::from_ns(t), move |_| fired.borrow_mut().push(t));
        }
        sim.run_until(SimTime::from_ns(16));
        assert_eq!(*fired.borrow(), vec![5, 15]);
        assert_eq!(sim.now(), SimTime::from_ns(16));
        sim.run();
        assert_eq!(*fired.borrow(), vec![5, 15, 25]);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_ns(10), |s| {
            s.schedule_at(SimTime::from_ns(5), |_| {});
        });
        sim.run();
    }
}
