//! The closure-driven event queue at the heart of the timed engine.
//!
//! Used by open-loop models (e.g. cache warm-up sweeps and unit tests of
//! the resource servers). Closed-loop protocol simulation uses the
//! cooperative scheduler in [`crate::coop`] instead.
//!
//! # Event-core contract
//!
//! Events fire in ascending `(time, seq)` order, where `seq` is the
//! global schedule-call counter — so events scheduled for the same
//! instant fire in insertion order and every run is deterministic.
//! Two interchangeable cores uphold that contract:
//!
//! * **Calendar queue** (default, [`QueueKind::Calendar`]): a bucketed
//!   timing wheel (Brown 1988) with power-of-two bucket widths, a slot
//!   arena that recycles fired event slots through a free list, and
//!   inline closure storage — the steady-state schedule→fire path does
//!   no per-event allocation.
//! * **Reference heap** ([`QueueKind::ReferenceHeap`]): the
//!   pre-refactor core, kept verbatim — `BinaryHeap<Reverse<(SimTime,
//!   u64)>>`, one `Box` per event, and an ever-growing slot `Vec` — as
//!   the semantic oracle for differential tests and the perf baseline
//!   for `BENCH_timed.json`.
//!
//! The differential property suite (`tests/events_differential.rs`)
//! drives both cores through seeded random schedules and asserts
//! identical firing logs, including same-instant insertion-order and
//! `run_until` boundary cases.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::mem::{self, ManuallyDrop, MaybeUninit};

use crate::time::SimTime;

type BoxedEvent<'a> = Box<dyn FnOnce(&mut Sim<'a>) + 'a>;

/// Which scheduler core backs a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// Calendar queue with slot recycling and inline closures (default).
    Calendar,
    /// The pre-refactor `BinaryHeap` + boxed-event core, kept as the
    /// differential-testing oracle and perf baseline.
    ReferenceHeap,
}

// ---------------------------------------------------------------------
// Inline event cells: closures stored by value, no Box on the fast path.
// ---------------------------------------------------------------------

/// Inline storage budget for event closures. Engine closures capture a
/// few words (an `Rc`, a couple of integers); anything larger falls back
/// to one `Box` without changing semantics.
const INLINE_EVENT_BYTES: usize = 48;

#[repr(align(16))]
struct InlineBuf {
    bytes: [MaybeUninit<u8>; INLINE_EVENT_BYTES],
}

/// A type-erased `FnOnce(&mut Sim)` stored inline (or behind one `Box`
/// when it exceeds [`INLINE_EVENT_BYTES`]). The two thunks are the only
/// code that knows the concrete closure type.
struct EventCell<'a> {
    /// Moves the closure out of `buf` and runs it (consuming the cell).
    call: unsafe fn(*mut u8, &mut Sim<'a>),
    /// Drops the closure in `buf` without running it (unfired events).
    drop_in_place: unsafe fn(*mut u8),
    buf: InlineBuf,
    /// Owns a closure with lifetime `'a` (also makes the cell `!Send`,
    /// matching the boxed representation).
    _own: PhantomData<BoxedEvent<'a>>,
}

unsafe fn call_inline<'a, F: FnOnce(&mut Sim<'a>) + 'a>(p: *mut u8, sim: &mut Sim<'a>) {
    // SAFETY: `p` holds a valid `F` written by `EventCell::new`; the cell
    // is consumed by `fire`, so the value is read exactly once.
    let f = unsafe { p.cast::<F>().read() };
    f(sim);
}

unsafe fn drop_inline<F>(p: *mut u8) {
    // SAFETY: as above, but invoked at most once from EventCell::drop.
    unsafe { std::ptr::drop_in_place(p.cast::<F>()) }
}

unsafe fn call_boxed<'a, F: FnOnce(&mut Sim<'a>) + 'a>(p: *mut u8, sim: &mut Sim<'a>) {
    // SAFETY: `p` holds a `*mut F` from `Box::into_raw`.
    let f = unsafe { Box::from_raw(p.cast::<*mut F>().read()) };
    (*f)(sim);
}

unsafe fn drop_boxed<F>(p: *mut u8) {
    // SAFETY: as above.
    drop(unsafe { Box::from_raw(p.cast::<*mut F>().read()) });
}

impl<'a> EventCell<'a> {
    fn new<F: FnOnce(&mut Sim<'a>) + 'a>(f: F) -> Self {
        let mut cell = EventCell {
            call: call_inline::<F>,
            drop_in_place: drop_inline::<F>,
            buf: InlineBuf {
                bytes: [MaybeUninit::uninit(); INLINE_EVENT_BYTES],
            },
            _own: PhantomData,
        };
        let p = cell.buf.bytes.as_mut_ptr().cast::<u8>();
        if mem::size_of::<F>() <= INLINE_EVENT_BYTES
            && mem::align_of::<F>() <= mem::align_of::<InlineBuf>()
        {
            // SAFETY: the buffer is large and aligned enough for `F`.
            unsafe { p.cast::<F>().write(f) };
        } else {
            cell.call = call_boxed::<F>;
            cell.drop_in_place = drop_boxed::<F>;
            let raw = Box::into_raw(Box::new(f));
            // SAFETY: a thin pointer always fits the buffer.
            unsafe { p.cast::<*mut F>().write(raw) };
        }
        cell
    }

    /// Run the stored closure, consuming the cell without double-drop.
    fn fire(self, sim: &mut Sim<'a>) {
        let mut cell = ManuallyDrop::new(self);
        // SAFETY: ManuallyDrop suppresses the destructor, so the closure
        // is consumed exactly once (by the call thunk).
        unsafe { (cell.call)(cell.buf.bytes.as_mut_ptr().cast::<u8>(), sim) }
    }
}

impl Drop for EventCell<'_> {
    fn drop(&mut self) {
        // SAFETY: only reached for cells that were never fired.
        unsafe { (self.drop_in_place)(self.buf.bytes.as_mut_ptr().cast::<u8>()) }
    }
}

// ---------------------------------------------------------------------
// Slot arena: fired slots are recycled through an intrusive free list,
// so pending-event storage is O(peak pending), not O(total scheduled).
// ---------------------------------------------------------------------

const NIL: u32 = u32::MAX;

enum Slot<'a> {
    Free { next: u32 },
    Full(EventCell<'a>),
}

struct SlotArena<'a> {
    slots: Vec<Slot<'a>>,
    free_head: u32,
}

impl<'a> SlotArena<'a> {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: NIL,
        }
    }

    fn insert(&mut self, cell: EventCell<'a>) -> u32 {
        if self.free_head != NIL {
            let i = self.free_head;
            match mem::replace(&mut self.slots[i as usize], Slot::Full(cell)) {
                Slot::Free { next } => self.free_head = next,
                Slot::Full(_) => unreachable!("free list pointed at a live slot"),
            }
            i
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(Slot::Full(cell));
            i
        }
    }

    fn take(&mut self, i: u32) -> EventCell<'a> {
        let freed = Slot::Free {
            next: self.free_head,
        };
        match mem::replace(&mut self.slots[i as usize], freed) {
            Slot::Full(cell) => {
                self.free_head = i;
                cell
            }
            Slot::Free { .. } => panic!("event fired twice"),
        }
    }

    /// High-water slot count — bounded by peak concurrent pending events.
    fn high_water(&self) -> usize {
        self.slots.len()
    }
}

// ---------------------------------------------------------------------
// Calendar queue.
// ---------------------------------------------------------------------

/// Queue key: full `(t, seq)` comparison keeps same-bucket selection
/// deterministic regardless of intra-bucket storage order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct EventKey {
    t: u64,
    seq: u64,
    slot: u32,
}

const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 20;
const MAX_SHIFT: u32 = 44;

/// Consecutive slow pops after which the calendar re-tunes itself from
/// the live distribution. Resizes normally re-pick the bucket width
/// when the count crosses a threshold, but a distribution can drift
/// (events spreading out) at a constant count — then the width stays
/// stale forever and every pop walks hundreds of empty buckets, or
/// degenerates all the way to the full-rotation fallback. Persistent
/// slow pops are the signature of exactly that, so they force the
/// re-tune.
const RETUNE_AFTER: u32 = 4;

/// A pop that walks more than this many buckets counts as slow. A
/// well-tuned calendar keeps a couple of events per bucket, so typical
/// pops walk a handful; a genuine sparse stretch can exceed this
/// occasionally without tripping the [`RETUNE_AFTER`] streak.
const STALE_WALK: usize = 64;

/// Bucketed timing wheel: bucket `i` of width `2^shift` ps holds every
/// pending event whose day index `t >> shift` is ≡ `i` mod the bucket
/// count. A cursor walks day windows in time order; events a full
/// rotation ahead are found by a direct min scan that re-seats the
/// cursor. Resizes (grow at >2 events/bucket, shrink below 1/4) re-pick
/// the bucket count ≈ pending count and the width from the mean pending
/// gap, both rounded to powers of two so indexing is shift-and-mask.
struct Calendar {
    buckets: Vec<Vec<EventKey>>,
    /// log2 of the bucket (day) width in picoseconds.
    shift: u32,
    /// `buckets.len() - 1`; the bucket count is a power of two.
    mask: u64,
    count: usize,
    /// Bucket the cursor is visiting.
    cur: usize,
    /// Exclusive end of the cursor's current day window.
    day_end: u64,
    /// Consecutive pops that needed the full-rotation fallback; at
    /// [`RETUNE_AFTER`] the next pop resizes to re-tune the width.
    stale: u32,
}

impl Calendar {
    fn new() -> Self {
        let mut cal = Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: 10,
            mask: (MIN_BUCKETS - 1) as u64,
            count: 0,
            cur: 0,
            day_end: 0,
            stale: 0,
        };
        cal.seek(0);
        cal
    }

    /// Re-seat the cursor on the day window containing `t`.
    fn seek(&mut self, t: u64) {
        let day = t >> self.shift;
        self.cur = (day & self.mask) as usize;
        let end = (u128::from(day) + 1) << self.shift;
        self.day_end = u64::try_from(end).unwrap_or(u64::MAX);
    }

    fn place(&mut self, k: EventKey) {
        let idx = ((k.t >> self.shift) & self.mask) as usize;
        self.buckets[idx].push(k);
        self.count += 1;
        // Keep the cursor at or before every pending event. A push can
        // land behind the cursor when `run_until` pops a beyond-deadline
        // event (advancing the cursor to its day) and reinserts it, then
        // new events are scheduled at earlier times — reseat so the
        // forward scan cannot skip them.
        let day_start = self.day_end.saturating_sub(1u64 << self.shift);
        if k.t < day_start {
            self.seek(k.t);
        }
    }

    fn push(&mut self, k: EventKey) {
        self.place(k);
        if self.count > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    fn pop_min(&mut self) -> Option<EventKey> {
        if self.count == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let day = 1u64 << self.shift;
        let mut cur = self.cur;
        let mut day_end = self.day_end;
        for walked in 0..nb {
            if !self.buckets[cur].is_empty() {
                let b = &self.buckets[cur];
                let mut best: Option<usize> = None;
                for (i, k) in b.iter().enumerate() {
                    if k.t < day_end && best.is_none_or(|bi| *k < b[bi]) {
                        best = Some(i);
                    }
                }
                if let Some(i) = best {
                    self.cur = cur;
                    self.day_end = day_end;
                    if walked > STALE_WALK {
                        self.stale += 1;
                        let k = self.remove_at(cur, i);
                        if self.stale >= RETUNE_AFTER {
                            self.resize();
                            self.stale = 0;
                        }
                        return Some(k);
                    }
                    self.stale = 0;
                    return Some(self.remove_at(cur, i));
                }
            }
            cur = (cur + 1) & (self.mask as usize);
            day_end = day_end.saturating_add(day);
        }
        // Nothing within a full rotation: the next event is at least one
        // "year" ahead. A genuine time jump hits this once; a stale
        // width hits it on every pop — re-tune and retry (the resize
        // reseats the cursor on the min event's day, so the retry's
        // rotation scan succeeds immediately).
        self.stale += 1;
        if self.stale >= RETUNE_AFTER {
            self.resize();
            self.stale = 0;
            return self.pop_min();
        }
        // Direct search for the global min, then jump.
        let mut best: Option<(usize, usize)> = None;
        for (bi, b) in self.buckets.iter().enumerate() {
            for (i, k) in b.iter().enumerate() {
                if best.is_none_or(|(pb, pi)| *k < self.buckets[pb][pi]) {
                    best = Some((bi, i));
                }
            }
        }
        let (bi, i) = best.expect("count > 0 but no pending event found");
        let k = self.remove_at(bi, i);
        self.seek(k.t);
        Some(k)
    }

    fn remove_at(&mut self, bucket: usize, i: usize) -> EventKey {
        let k = self.buckets[bucket].swap_remove(i);
        self.count -= 1;
        if self.count * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        k
    }

    /// Rebuild with a bucket count ≈ pending count and a width matched
    /// to the mean pending gap. Amortized O(1) per event.
    fn resize(&mut self) {
        // cold: resize is amortized over ≥ half the events it moves
        let mut all: Vec<EventKey> = Vec::with_capacity(self.count);
        for b in &mut self.buckets {
            all.append(b);
        }
        let (mut min_t, mut max_t) = (u64::MAX, 0u64);
        for k in &all {
            min_t = min_t.min(k.t);
            max_t = max_t.max(k.t);
        }
        let n = all.len().max(1);
        let nb = n
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Width ≈ 2× the mean gap between pending events, so a bucket
        // holds a couple of events of the current "epoch" on average.
        let gap = ((max_t - min_t) / n as u64).max(1);
        let shift = (64 - gap.leading_zeros()).min(MAX_SHIFT);
        if nb != self.buckets.len() {
            self.buckets = (0..nb).map(|_| Vec::new()).collect();
        }
        self.shift = shift;
        self.mask = (nb - 1) as u64;
        self.count = 0;
        for k in all {
            self.place(k);
        }
        self.seek(if min_t == u64::MAX { 0 } else { min_t });
    }
}

// ---------------------------------------------------------------------
// Sim.
// ---------------------------------------------------------------------

enum Core<'a> {
    Calendar {
        cal: Calendar,
        arena: SlotArena<'a>,
    },
    /// The pre-refactor event core, verbatim: one `Box` per event and a
    /// slot `Vec` that grows by one entry per event ever scheduled.
    Reference {
        queue: BinaryHeap<Reverse<(SimTime, u64)>>,
        slots: Vec<Option<BoxedEvent<'a>>>,
    },
}

/// An event popped off a core, ready to run (the core's borrow has
/// ended, so the closure may re-enter `Sim` freely).
enum Fired<'a> {
    Cell(EventCell<'a>),
    Boxed(BoxedEvent<'a>),
}

impl<'a> Fired<'a> {
    fn fire(self, sim: &mut Sim<'a>) {
        match self {
            Fired::Cell(c) => c.fire(sim),
            Fired::Boxed(f) => f(sim),
        }
    }
}

/// Sequential discrete-event simulator with a closure per event.
///
/// Events scheduled for the same instant fire in insertion order, which
/// keeps runs deterministic. See the module docs for the two cores.
pub struct Sim<'a> {
    now: SimTime,
    seq: u64,
    executed: u64,
    core: Core<'a>,
}

impl Default for Sim<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Sim<'a> {
    /// A simulator on the default calendar-queue core.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// A simulator on the retained pre-refactor heap core (differential
    /// tests and the `BENCH_timed.json` baseline).
    pub fn reference() -> Self {
        Self::with_kind(QueueKind::ReferenceHeap)
    }

    pub fn with_kind(kind: QueueKind) -> Self {
        let core = match kind {
            QueueKind::Calendar => Core::Calendar {
                cal: Calendar::new(),
                arena: SlotArena::new(),
            },
            QueueKind::ReferenceHeap => Core::Reference {
                queue: BinaryHeap::new(),
                slots: Vec::new(),
            },
        };
        Self {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            core,
        }
    }

    pub fn kind(&self) -> QueueKind {
        match self.core {
            Core::Calendar { .. } => QueueKind::Calendar,
            Core::Reference { .. } => QueueKind::ReferenceHeap,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of scheduled-but-unfired events.
    pub fn pending(&self) -> usize {
        match &self.core {
            Core::Calendar { cal, .. } => cal.count,
            Core::Reference { queue, .. } => queue.len(),
        }
    }

    /// High-water mark of the event slot store. On the calendar core
    /// this is bounded by peak *concurrent* pending events (fired slots
    /// are recycled); on the reference core it grows by one per event
    /// ever scheduled — the leak the refactor removed.
    pub fn slot_high_water(&self) -> usize {
        match &self.core {
            Core::Calendar { arena, .. } => arena.high_water(),
            Core::Reference { slots, .. } => slots.len(),
        }
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<'a>) + 'a) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.seq;
        self.seq += 1;
        match &mut self.core {
            Core::Calendar { cal, arena } => {
                let slot = arena.insert(EventCell::new(f));
                cal.push(EventKey { t: at.ps(), seq, slot });
            }
            Core::Reference { queue, slots } => {
                slots.push(Some(Box::new(f)));
                queue.push(Reverse((at, seq)));
            }
        }
    }

    /// Schedule `f` to run `after` from now.
    pub fn schedule_in(&mut self, after: SimTime, f: impl FnOnce(&mut Sim<'a>) + 'a) {
        self.schedule_at(self.now + after, f);
    }

    /// Pop the next event if its time is ≤ `until` (when given),
    /// advancing `now`/`executed`. The calendar core has no cheap peek,
    /// so a beyond-deadline event is popped and reinserted — `(t, seq)`
    /// keys make that order-preserving.
    fn pop_due(&mut self, until: Option<u64>) -> Option<Fired<'a>> {
        match &mut self.core {
            Core::Calendar { cal, arena } => {
                let k = cal.pop_min()?;
                if let Some(u) = until {
                    if k.t > u {
                        cal.push(k);
                        return None;
                    }
                }
                self.now = SimTime::from_ps(k.t);
                self.executed += 1;
                Some(Fired::Cell(arena.take(k.slot)))
            }
            Core::Reference { queue, slots } => {
                let &Reverse((t, _)) = queue.peek()?;
                if let Some(u) = until {
                    if t.ps() > u {
                        return None;
                    }
                }
                let Reverse((t, seq)) = queue.pop().expect("peeked entry vanished");
                self.now = t;
                self.executed += 1;
                let f = slots[seq as usize].take().expect("event fired twice");
                Some(Fired::Boxed(f))
            }
        }
    }

    /// Run until the queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run events with time ≤ `until` (events beyond stay queued).
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        while let Some(ev) = self.pop_due(Some(until.ps())) {
            ev.fire(self);
        }
        self.now = self.now.max(until);
        self.now
    }

    /// Execute the next event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.pop_due(None) {
            Some(ev) => {
                ev.fire(self);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const BOTH: [QueueKind; 2] = [QueueKind::Calendar, QueueKind::ReferenceHeap];

    #[test]
    fn events_fire_in_time_order() {
        for kind in BOTH {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::with_kind(kind);
            for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
                let log = log.clone();
                sim.schedule_at(SimTime::from_ns(t), move |s| {
                    log.borrow_mut().push((s.now().ps(), tag));
                });
            }
            sim.run();
            assert_eq!(
                *log.borrow(),
                vec![(10_000, 'a'), (20_000, 'b'), (30_000, 'c')],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        for kind in BOTH {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::with_kind(kind);
            for tag in ['x', 'y', 'z'] {
                let log = log.clone();
                sim.schedule_at(SimTime::from_ns(5), move |_| log.borrow_mut().push(tag));
            }
            sim.run();
            assert_eq!(*log.borrow(), vec!['x', 'y', 'z'], "{kind:?}");
        }
    }

    #[test]
    fn events_can_schedule_events() {
        for kind in BOTH {
            let hits = Rc::new(RefCell::new(0u32));
            let mut sim = Sim::with_kind(kind);
            fn tick(s: &mut Sim<'_>, hits: Rc<RefCell<u32>>, left: u32) {
                *hits.borrow_mut() += 1;
                if left > 0 {
                    s.schedule_in(SimTime::from_ns(1), move |s| tick(s, hits, left - 1));
                }
            }
            let h = hits.clone();
            sim.schedule_at(SimTime::ZERO, move |s| tick(s, h, 9));
            let end = sim.run();
            assert_eq!(*hits.borrow(), 10);
            assert_eq!(end, SimTime::from_ns(9));
            assert_eq!(sim.executed(), 10);
        }
    }

    #[test]
    fn run_until_stops_early() {
        for kind in BOTH {
            let fired = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::with_kind(kind);
            for t in [5u64, 15, 25] {
                let fired = fired.clone();
                sim.schedule_at(SimTime::from_ns(t), move |_| fired.borrow_mut().push(t));
            }
            sim.run_until(SimTime::from_ns(16));
            assert_eq!(*fired.borrow(), vec![5, 15], "{kind:?}");
            assert_eq!(sim.now(), SimTime::from_ns(16));
            assert_eq!(sim.pending(), 1);
            sim.run();
            assert_eq!(*fired.borrow(), vec![5, 15, 25], "{kind:?}");
        }
    }

    #[test]
    fn run_until_exact_boundary_fires_inclusive() {
        for kind in BOTH {
            let fired = Rc::new(RefCell::new(0u32));
            let mut sim = Sim::with_kind(kind);
            let f = fired.clone();
            sim.schedule_at(SimTime::from_ns(10), move |_| *f.borrow_mut() += 1);
            sim.run_until(SimTime::from_ns(10));
            assert_eq!(*fired.borrow(), 1, "{kind:?}: t == until must fire");
        }
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_ns(10), |s| {
            s.schedule_at(SimTime::from_ns(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn fired_slots_are_recycled() {
        // A long self-rescheduling chain keeps at most one event pending,
        // so the calendar arena must stay tiny while the reference core's
        // slot Vec (by design, kept as the pre-refactor baseline) grows
        // by one per event.
        fn chain(s: &mut Sim<'_>, left: u32) {
            if left > 0 {
                s.schedule_in(SimTime::from_ps(7), move |s| chain(s, left - 1));
            }
        }
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::ZERO, |s| chain(s, 9_999));
        sim.run();
        assert_eq!(sim.executed(), 10_000);
        assert!(
            sim.slot_high_water() <= 2,
            "calendar arena leaked: {} slots",
            sim.slot_high_water()
        );

        let mut refsim = Sim::reference();
        refsim.schedule_at(SimTime::ZERO, |s| chain(s, 9_999));
        refsim.run();
        assert_eq!(refsim.slot_high_water(), 10_000);
    }

    #[test]
    fn oversized_closures_fall_back_to_box() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let big = [7u64; 32]; // 256 B capture — beyond the inline budget
        let l = log.clone();
        sim.schedule_at(SimTime::from_ns(1), move |_| {
            l.borrow_mut().push(big.iter().sum::<u64>());
        });
        // An unfired oversized closure must also drop cleanly.
        let l2 = log.clone();
        let big2 = [1u64; 32];
        sim.schedule_at(SimTime::from_ns(2), move |_| {
            l2.borrow_mut().push(big2[0]);
        });
        sim.run_until(SimTime::from_ns(1));
        drop(sim);
        assert_eq!(*log.borrow(), vec![7 * 32]);
    }

    #[test]
    fn calendar_survives_resizes_and_wide_time_spread() {
        // Push enough events at wildly mixed magnitudes to force both
        // grow and shrink resizes, and check global firing order.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let mut ts: Vec<u64> = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = match i % 3 {
                0 => x % 1_000,                  // dense cluster near zero
                1 => 1_000_000 + x % 1_000_000,  // mid-range
                _ => x % 50_000_000,             // sparse far future
            };
            ts.push(t);
            let log = log.clone();
            sim.schedule_at(SimTime::from_ps(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        ts.sort_unstable();
        assert_eq!(*log.borrow(), ts);
        assert_eq!(sim.executed(), 3000);
    }
}
