//! Zero-dependency substrate for the TSHMEM reproduction workspace.
//!
//! TSHMEM's pitch is a thin layer owning its primitives directly over
//! the hardware substrate — TMC sync objects, UDN channels, spin
//! barriers — rather than a stack of third-party runtimes. This crate is
//! the software analog of that stance: everything the build-and-test
//! path needs that `std` does not provide lives here, in-tree, with no
//! external crates. That keeps tier-1 (`cargo build --release &&
//! cargo test -q`) fully offline-reproducible.
//!
//! * [`sync`] — `Mutex`/`Condvar`/`RwLock` over `std::sync` with
//!   poison-free, `parking_lot`-style APIs (`lock()` returns the guard
//!   directly; `Condvar::wait` takes `&mut MutexGuard`).
//! * [`channel`] — bounded/unbounded MPMC channels with
//!   `recv_timeout`, mirroring the `crossbeam_channel` surface the UDN
//!   fabric model uses.
//! * [`rng`] — the SplitMix64 [`rng::KeyedRng`] plus the [`rng::Rng`]
//!   trait; `below` uses rejection sampling (no modulo bias).
//! * [`proptest_mini`] — a small deterministic property-test harness:
//!   seeded generators, an iteration budget, and tape-based input
//!   shrinking with a failing-seed report.
//! * [`smallvec`] — an inline small-vector for protocol-sized payloads
//!   (UDN packets keep ≤ 6 words inline; no allocator on the hot path).

pub mod channel;
pub mod proptest_mini;
pub mod rng;
pub mod smallvec;
pub mod sync;
