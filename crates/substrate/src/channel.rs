//! Bounded and unbounded MPMC channels.
//!
//! A minimal in-tree replacement for the `crossbeam_channel` surface the
//! UDN fabric model uses: cloneable [`Sender`]s and [`Receiver`]s over
//! one FIFO queue, blocking `send`/`recv`, `try_recv`, `recv_timeout`,
//! and disconnection detection (a send fails once every receiver is
//! gone; a recv fails once every sender is gone *and* the queue is
//! drained). Bounded channels block the sender when full — exactly the
//! backpressure semantics the fabric's hardware-faithful mode needs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{Condvar, Mutex};

/// The sending half failed because all receivers were dropped; the
/// unsent value is returned.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// All senders were dropped and the queue is empty.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why a non-blocking receive returned nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Why a non-blocking send was refused; the unsent value is returned.
pub enum TrySendError<T> {
    /// A bounded queue is at capacity right now.
    Full(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.pad("Full(..)"),
            TrySendError::Disconnected(_) => f.pad("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.pad("sending on a full channel"),
            TrySendError::Disconnected(_) => f.pad("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Why a timed receive returned nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Receivers currently parked in a `not_empty` wait. Maintained
    /// under the state lock so senders can skip the condvar notify —
    /// an unconditional futex syscall on std's condvar — when nobody
    /// is parked (the common case when receivers poll before parking).
    empty_waiters: usize,
    /// Senders currently parked in a `not_full` wait (bounded queues).
    full_waiters: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable; all clones feed one queue.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable; clones *share* the queue
/// (MPMC — each message is delivered to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

/// Create a bounded channel: a send blocks while `capacity` messages
/// are already queued (backpressure).
///
/// # Panics
/// Panics if `capacity == 0` (rendezvous channels are not modeled).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be at least 1");
    make(Some(capacity))
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            empty_waiters: 0,
            full_waiters: 0,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender { chan: chan.clone() },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded queue is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st.full_waiters += 1;
                    self.chan.not_full.wait(&mut st);
                    st.full_waiters -= 1;
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        let wake = st.empty_waiters > 0;
        drop(st);
        if wake {
            self.chan.not_empty.notify_one();
        }
        Ok(())
    }

    /// Non-blocking send: refuses instead of blocking when a bounded
    /// queue is full, returning the value so the caller can retry while
    /// doing other work (e.g. draining its own receive queues — the
    /// deadlock-avoidance pattern for finite-buffer fabrics).
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.state.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.chan.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        let wake = st.empty_waiters > 0;
        drop(st);
        if wake {
            self.chan.not_empty.notify_one();
        }
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Self {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                let wake = st.full_waiters > 0;
                drop(st);
                if wake {
                    self.chan.not_full.notify_one();
                }
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st.empty_waiters += 1;
            self.chan.not_empty.wait(&mut st);
            st.empty_waiters -= 1;
        }
    }

    /// Blocking receive that gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                let wake = st.full_waiters > 0;
                drop(st);
                if wake {
                    self.chan.not_full.notify_one();
                }
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            st.empty_waiters += 1;
            self.chan.not_empty.wait_timeout(&mut st, deadline - now);
            st.empty_waiters -= 1;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock();
        if let Some(v) = st.queue.pop_front() {
            let wake = st.full_waiters > 0;
            drop(st);
            if wake {
                self.chan.not_full.notify_one();
            }
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Self {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1000u64 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        t.join().unwrap();
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..500).sum::<u64>() + (1000..1500).sum::<u64>();
        assert_eq!(total, expect);
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            let t0 = Instant::now();
            tx.send(3).unwrap();
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(rx.recv().unwrap(), 1);
        let blocked = t.join().unwrap();
        assert!(blocked >= Duration::from_millis(20), "blocked {blocked:?}");
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn recv_sees_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_woken_by_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_all_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_bounded_send_woken_by_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_err());
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap());
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn try_send_full_vs_disconnected() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        match tx.try_send(2) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        match tx.try_send(4) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn try_send_never_blocks_on_unbounded() {
        let (tx, rx) = unbounded();
        for i in 0..1000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u8>(0);
    }
}
