//! Poison-free synchronization primitives over `std::sync`.
//!
//! The API mirrors `parking_lot`'s at every call site this workspace
//! uses: `lock()`/`read()`/`write()` return guards directly (a panicked
//! holder does not poison the lock — the next `lock()` simply takes
//! over, which is the behavior the coop scheduler's panic-propagation
//! path relies on), and [`Condvar::wait`] takes `&mut MutexGuard` so
//! blocking loops keep using one guard binding.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison from a panicked prior holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`].
///
/// Internally holds `Option<std::sync::MutexGuard>` so [`Condvar::wait`]
/// can move the std guard out and back while the caller keeps borrowing
/// this wrapper — the trick that gives std's by-value condvar protocol a
/// `parking_lot`-style `&mut guard` surface.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard stolen during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard stolen during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified; the guard is released while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard stolen during wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses; returns `true` if the
    /// wait timed out.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> bool {
        let inner = guard.inner.take().expect("guard stolen during wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

/// Reader-writer lock whose `read()`/`write()` never return poison
/// errors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_exclusion() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(41u32));
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        });
        assert!(t.join().is_err());
        // Poison-free: the next lock() succeeds and sees the old value.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_with_mut_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }

    #[test]
    fn rwlock_readers_share_writer_excludes() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn const_constructors_work_in_statics() {
        static M: Mutex<u32> = Mutex::new(5);
        static CV: Condvar = Condvar::new();
        static RW: RwLock<u32> = RwLock::new(6);
        assert_eq!(*M.lock(), 5);
        CV.notify_all();
        assert_eq!(*RW.read(), 6);
    }
}
