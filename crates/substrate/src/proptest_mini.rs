//! A small deterministic property-test harness.
//!
//! The in-tree replacement for the `proptest` surface this workspace
//! uses: composable [`Strategy`] generators, a fixed per-suite seed and
//! iteration budget, and automatic input shrinking. A property is an
//! ordinary closure that panics (via `assert!`) on violation; the
//! harness reruns it over `cases` generated inputs and, on failure,
//! shrinks to a small counterexample and reports the seed + case so the
//! exact failure replays on any machine.
//!
//! # Shrinking model
//!
//! Generation is *tape-based* (the Hypothesis approach): every random
//! draw a strategy makes is recorded on a tape of `u64`s. Shrinking
//! never needs strategy-specific inverses — it perturbs the tape
//! (truncate, zero, halve, decrement) and replays generation, so any
//! composite strategy shrinks for free, and a zeroed tape always maps
//! to the "smallest" input (range minimums, shortest vectors, first
//! `one_of` branch). Replays past the end of a truncated tape draw 0.
//!
//! # Example
//!
//! ```
//! use substrate::proptest_mini as pt;
//! use substrate::proptest_mini::Strategy;
//!
//! pt::check(
//!     pt::Config::with_cases(64),
//!     pt::vec(0u32..100, 0..10).prop_map(|v| v.len()),
//!     |len| assert!(len < 10),
//! );
//! ```

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};

use crate::rng::KeyedRng;

/// Harness configuration: case count, base seed, shrink budget.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated inputs per property.
    pub cases: u32,
    /// Base seed; case `i` draws from stream `(seed, i)`.
    pub seed: u64,
    /// Maximum property re-executions spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Config {
    /// Default seed and shrink budget with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            seed: 0x7453_484D_454D_5031, // "tSHMEMP1"
            max_shrink_iters: 1024,
        }
    }

    /// Override the base seed (for replaying a reported failure).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// The random source handed to strategies. Records every draw on a
/// tape; in replay mode it reads the tape back (drawing 0 once the
/// tape is exhausted) so shrunk tapes regenerate deterministically.
pub struct Source {
    rng: Option<KeyedRng>,
    tape_in: Vec<u64>,
    pos: usize,
    record: Vec<u64>,
}

impl Source {
    fn fresh(seed: u64, case: u64) -> Self {
        Self {
            rng: Some(KeyedRng::new(seed, case)),
            tape_in: Vec::new(),
            pos: 0,
            record: Vec::new(),
        }
    }

    fn replay(tape: &[u64]) -> Self {
        Self {
            rng: None,
            tape_in: tape.to_vec(),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Draw the next `u64`.
    // Not an Iterator: draws are infinite and tape-recorded.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let v = if self.pos < self.tape_in.len() {
            self.tape_in[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.record.push(v);
        v
    }

    /// Draw uniform in `[0, n)` from a single tape slot, biased by
    /// simple reduction so that a zeroed slot maps to 0 (tape shrinking
    /// depends on draw → value monotonicity, and the harness does not
    /// need statistical perfection).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next() % n
    }
}

/// A generator of values for one property parameter.
pub trait Strategy {
    type Value: fmt::Debug;

    /// Produce one value, drawing randomness from `src`.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase, e.g. for [`one_of`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, src: &mut Source) -> S::Value {
        (**self).generate(src)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, src: &mut Source) -> S2::Value {
        (self.f)(self.inner.generate(src)).generate(src)
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + src.below(span) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + src.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Primitive types generable over their whole domain via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary(src: &mut Source) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut Source) -> $t {
                src.next() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut Source) -> $t {
                src.next() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(src: &mut Source) -> bool {
        src.next() & 1 == 1
    }
}

/// Strategy over a primitive's entire domain (a zeroed tape yields 0 /
/// `false`).
pub struct Any<T>(PhantomData<T>);

/// `any::<u64>()`-style whole-domain strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        T::arbitrary(src)
    }
}

/// Vectors of `elem` with a length drawn from `len` (half-open).
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, src: &mut Source) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + src.below(span) as usize;
        (0..n).map(|_| self.elem.generate(src)).collect()
    }
}

/// Choose uniformly among boxed alternatives (a zeroed tape picks the
/// first — list the simplest branch first for best shrinking).
pub fn one_of<T: fmt::Debug>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of needs at least one option");
    OneOf { options }
}

/// See [`one_of`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        let i = src.below(self.options.len() as u64) as usize;
        self.options[i].generate(src)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `prop` once against the value regenerated from `tape`.
/// `Err(message)` if the property panicked.
fn run_tape<S, F>(strategy: &S, prop: &F, tape: &[u64]) -> Result<(), String>
where
    S: Strategy,
    F: Fn(S::Value),
{
    let mut src = Source::replay(tape);
    let value = strategy.generate(&mut src);
    panic::catch_unwind(AssertUnwindSafe(|| prop(value)))
        .map_err(|p| panic_message(p.as_ref()))
}

/// Greedy tape shrinking: truncate, zero, halve, decrement; restart
/// after every improvement until the budget runs out or no perturbation
/// still fails.
fn shrink<S, F>(strategy: &S, prop: &F, mut best: Vec<u64>, mut budget: u32) -> Vec<u64>
where
    S: Strategy,
    F: Fn(S::Value),
{
    'outer: loop {
        // Candidate tapes in decreasing order of aggressiveness.
        let mut candidates: Vec<Vec<u64>> = Vec::new();
        if !best.is_empty() {
            candidates.push(best[..best.len() / 2].to_vec());
            candidates.push(best[..best.len() - 1].to_vec());
        }
        for i in 0..best.len() {
            if best[i] != 0 {
                let mut t = best.clone();
                t[i] = 0;
                candidates.push(t);
            }
        }
        for i in 0..best.len() {
            if best[i] > 1 {
                let mut t = best.clone();
                t[i] /= 2;
                candidates.push(t);
            }
        }
        for i in 0..best.len() {
            if best[i] > 0 {
                let mut t = best.clone();
                t[i] -= 1;
                candidates.push(t);
            }
        }
        for cand in candidates {
            if budget == 0 {
                break 'outer;
            }
            if cand == best {
                continue;
            }
            budget -= 1;
            if run_tape(strategy, prop, &cand).is_err() {
                best = cand;
                continue 'outer; // restart from the new best
            }
        }
        break; // no candidate still fails: local minimum
    }
    best
}

/// Check `prop` against `config.cases` inputs generated from
/// `strategy`.
///
/// # Panics
/// Panics with a shrunk counterexample, the base seed, and the failing
/// case index if any generated input makes `prop` panic. Rerunning with
/// the same seed regenerates the identical failure.
pub fn check<S, F>(config: Config, strategy: S, prop: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    for case in 0..config.cases {
        let mut src = Source::fresh(config.seed, case as u64);
        let value = strategy.generate(&mut src);
        let tape = src.record;
        let first_failure = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
        let Err(payload) = first_failure else {
            continue;
        };
        let original_msg = panic_message(payload.as_ref());
        let minimal = shrink(&strategy, &prop, tape, config.max_shrink_iters);
        let minimal_value = strategy.generate(&mut Source::replay(&minimal));
        let minimal_msg = run_tape(&strategy, &prop, &minimal)
            .err()
            .unwrap_or_else(|| original_msg.clone());
        panic!(
            "proptest_mini: property failed at seed={seed:#018x} case={case}\n\
             minimal input: {minimal_value:?}\n\
             minimal panic: {minimal_msg}\n\
             original panic: {original_msg}\n\
             (replay with Config::with_cases(..).seed({seed:#018x}))",
            seed = config.seed,
        );
    }
}

/// Property-scoped assertion; identical to `assert!` (the harness
/// catches the panic), kept for `proptest` port fidelity.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property-scoped equality assertion; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn runs_exactly_the_configured_cases() {
        let count = Cell::new(0u32);
        check(Config::with_cases(37), 0u32..100, |_| {
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 37);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let collect = |seed: u64| {
            let mut vals = Vec::new();
            let mut src = Source::fresh(seed, 0);
            for _ in 0..16 {
                vals.push((0u64..1_000_000).generate(&mut src));
            }
            vals
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        check(Config::with_cases(500), (5u16..9, (-3i32..4)), |(u, i)| {
            assert!((5..9).contains(&u));
            assert!((-3..4).contains(&i));
        });
    }

    #[test]
    fn vec_lengths_respect_range() {
        check(Config::with_cases(200), vec(any::<u8>(), 2..7), |v| {
            assert!((2..7).contains(&v.len()));
        });
    }

    #[test]
    fn one_of_only_picks_listed_branches() {
        let s = one_of(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            (10u8..20).boxed(),
        ]);
        check(Config::with_cases(300), s, |v| {
            assert!(v == 1 || v == 2 || (10..20).contains(&v));
        });
    }

    #[test]
    fn failure_is_reported_with_seed_and_shrunk_input() {
        let result = panic::catch_unwind(|| {
            check(Config::with_cases(256), 0u64..1000, |v| {
                assert!(v < 10, "too big: {v}");
            });
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("property failed"), "report: {msg}");
        assert!(msg.contains("seed="), "report: {msg}");
        // Greedy tape shrinking must land on the boundary value.
        assert!(msg.contains("minimal input: 10"), "report: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vector_length() {
        let result = panic::catch_unwind(|| {
            check(Config::with_cases(64), vec(0u32..100, 0..40), |v| {
                assert!(v.len() < 3, "len {}", v.len());
            });
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        // Minimal counterexample: 3 zeros.
        assert!(msg.contains("minimal input: [0, 0, 0]"), "report: {msg}");
    }

    #[test]
    fn flat_map_threads_the_source() {
        let s = (1usize..5).prop_flat_map(|n| vec(0u8..10, n..n + 1));
        check(Config::with_cases(200), s, |v| {
            assert!((1..5).contains(&v.len()));
        });
    }

    #[test]
    fn replay_past_truncated_tape_draws_zero() {
        let mut src = Source::replay(&[7]);
        assert_eq!(src.next(), 7);
        assert_eq!(src.next(), 0);
        assert_eq!(src.next(), 0);
    }

    #[test]
    fn prop_assert_macros_compile_and_fire() {
        prop_assert!(1 + 1 == 2);
        prop_assert_eq!(2, 2);
        let caught = panic::catch_unwind(|| prop_assert!(false, "boom"));
        assert!(caught.is_err());
    }
}
