//! An inline small-vector: short payloads live in the value itself.
//!
//! The UDN's protocol messages are at most six words (the strided
//! service request — see `tshmem::service::encode_strided_request`),
//! and barrier/collective tokens are shorter still, yet the original
//! fabric model heap-allocated a `Vec<u64>` per packet hop. On the
//! paper's machine those tokens are register writes; on the model they
//! should at least not touch the allocator. [`SmallVec`] keeps up to
//! `N` elements inline and spills to a heap `Vec` only beyond that
//! (bulk payloads — the UDN packet limit is 127 words), so cloning or
//! moving a protocol-sized payload allocates nothing.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector of `Copy` elements that stores up to `N` inline.
///
/// Dereferences to `&[T]`, compares against anything slice-shaped, and
/// iterates by value; build one with `From<&[T]>`/`From<Vec<T>>` or
/// [`SmallVec::new`] + [`SmallVec::push`].
pub struct SmallVec<T: Copy + Default, const N: usize>(Repr<T, N>);

enum Repr<T: Copy + Default, const N: usize> {
    Inline { len: u8, buf: [T; N] },
    Spill(Vec<T>),
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// An empty vector (inline; no allocation).
    pub fn new() -> Self {
        Self(Repr::Inline {
            len: 0,
            buf: [T::default(); N],
        })
    }

    /// Copy a slice in, inline when it fits.
    pub fn from_slice(s: &[T]) -> Self {
        if s.len() <= N {
            let mut buf = [T::default(); N];
            buf[..s.len()].copy_from_slice(s);
            Self(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            Self(Repr::Spill(s.to_vec()))
        }
    }

    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spill(v) => v,
        }
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Spill(v) => v,
        }
    }

    /// Append one element, spilling to the heap past `N`.
    pub fn push(&mut self, value: T) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let l = *len as usize;
                if l < N {
                    buf[l] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..l]);
                    v.push(value);
                    self.0 = Repr::Spill(v);
                }
            }
            Repr::Spill(v) => v.push(value),
        }
    }

    /// True while the contents live inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Inline { len, buf } => Self(Repr::Inline {
                len: *len,
                buf: *buf,
            }),
            Repr::Spill(v) => Self(Repr::Spill(v.clone())),
        }
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for SmallVec<T, N> {
    fn from(s: &[T]) -> Self {
        Self::from_slice(s)
    }
}

impl<T: Copy + Default, const N: usize, const M: usize> From<[T; M]> for SmallVec<T, N> {
    fn from(a: [T; M]) -> Self {
        Self::from_slice(&a)
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() <= N {
            Self::from_slice(&v)
        } else {
            Self(Repr::Spill(v))
        }
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<SmallVec<T, N>> for Vec<T> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<&[T]> for SmallVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for SmallVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + std::hash::Hash, const N: usize> std::hash::Hash for SmallVec<T, N> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

/// By-value iterator (no allocation for inline contents).
pub struct IntoIter<T: Copy + Default, const N: usize> {
    v: SmallVec<T, N>,
    i: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let s = self.v.as_slice();
        if self.i < s.len() {
            let out = s[self.i];
            self.i += 1;
            Some(out)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len() - self.i;
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { v: self, i: 0 }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type W = SmallVec<u64, 6>;

    #[test]
    fn empty_and_push_stay_inline_up_to_capacity() {
        let mut v = W::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 0..6 {
            v.push(i);
            assert!(v.is_inline(), "inline through {} elements", i + 1);
        }
        assert_eq!(v.len(), 6);
        v.push(6);
        assert!(!v.is_inline());
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn from_slice_picks_repr_by_length() {
        assert!(W::from_slice(&[1, 2, 3]).is_inline());
        assert!(!W::from_slice(&[0; 7]).is_inline());
        assert_eq!(W::from_slice(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn from_vec_inlines_short_vectors() {
        assert!(W::from(vec![1, 2]).is_inline());
        let long: Vec<u64> = (0..100).collect();
        let sv = W::from(long.clone());
        assert!(!sv.is_inline());
        assert_eq!(sv, long);
    }

    #[test]
    fn deref_eq_iter_and_index_work_like_a_slice() {
        let v = W::from_slice(&[10, 20, 30]);
        assert_eq!(v[1], 20);
        assert_eq!(v.first(), Some(&10));
        assert_eq!(v.iter().sum::<u64>(), 60);
        let collected: Vec<u64> = v.clone().into_iter().collect();
        assert_eq!(collected, vec![10, 20, 30]);
        assert_eq!(v, [10u64, 20, 30]);
        assert_eq!(v, &[10u64, 20, 30][..]);
    }

    #[test]
    fn clone_of_inline_does_not_allocate_len_mismatch_not_equal() {
        let v = W::from_slice(&[1]);
        let c = v.clone();
        assert!(c.is_inline());
        assert_eq!(v, c);
        assert_ne!(W::from_slice(&[1, 2]), vec![1]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v = W::from_slice(&[1, 2, 3]);
        v[0] = 9;
        assert_eq!(v, vec![9, 2, 3]);
    }
}
