//! Deterministic RNG: SplitMix64 streams keyed by `(seed, key)`.
//!
//! Promoted here from the apps crate because every layer needs
//! reproducible synthetic data without coordinating state — procedural
//! test corpora, randomized stress traffic, and the property-test
//! harness all draw from [`KeyedRng`]. SplitMix64 keyed by `(seed,
//! index)` gives position-independent streams: any PE can regenerate
//! any other PE's data from the key alone.
//!
//! [`Rng::below`] uses rejection sampling, so non-power-of-two bounds
//! carry no modulo bias.

/// SplitMix64 step.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of uniform `u64`s plus derived draws. The workspace's
/// `rand`-free analog of `rand::Rng`.
pub trait Rng {
    /// The next uniform 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit draw (high bits of [`next_u64`]).
    ///
    /// [`next_u64`]: Rng::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)` via rejection sampling — no modulo bias for
    /// non-power-of-two `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) has no uniform answer");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Accept draws below the largest multiple of n that fits in
        // 2^64; `rem` is 2^64 mod n, the size of the biased tail.
        let rem = (u64::MAX % n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= u64::MAX - rem {
                return v % n;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 24 bits of precision.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fill `buf` with uniform draws.
    fn fill_u64(&mut self, buf: &mut [u64]) {
        for slot in buf {
            *slot = self.next_u64();
        }
    }
}

/// A keyed stream: a deterministic function of `(seed, key)`.
pub struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    pub fn new(seed: u64, key: u64) -> Self {
        let mut state = seed ^ key.wrapping_mul(0xA24B_AED4_963E_E407);
        // Warm up to decorrelate nearby keys.
        splitmix64(&mut state);
        splitmix64(&mut state);
        Self { state }
    }

    /// Single-stream constructor (key 0) for `rand::SeedableRng`-style
    /// call sites.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed, 0)
    }

    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, n)`; see [`Rng::below`].
    pub fn below(&mut self, n: u64) -> u64 {
        Rng::below(self, n)
    }

    /// Uniform float in `[0, 1)`; see [`Rng::unit_f32`].
    pub fn unit_f32(&mut self) -> f32 {
        Rng::unit_f32(self)
    }
}

impl Rng for KeyedRng {
    fn next_u64(&mut self) -> u64 {
        KeyedRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a: Vec<u64> = {
            let mut r = KeyedRng::new(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = KeyedRng::new(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = KeyedRng::new(7, 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_range_and_unit_in_range() {
        let mut r = KeyedRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let u = r.unit_f32();
            assert!((0.0..1.0).contains(&u));
            let v = Rng::unit_f64(&mut r);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_unbiased_for_non_power_of_two_bounds() {
        // With `% n` a 64-bit draw over-represents small residues; the
        // rejection sampler must not. Check several awkward bounds for
        // per-bucket counts within 5 sigma of uniform.
        for &n in &[3u64, 7, 10, 17, 1000, 4097] {
            let mut r = KeyedRng::new(0xDEAD_BEEF, n);
            let draws = 20_000usize;
            let mut counts = vec![0u64; n.min(32) as usize];
            for _ in 0..draws {
                let v = r.below(n);
                assert!(v < n, "draw {v} out of [0, {n})");
                // Bucket small-n draws directly; fold large n into 32.
                let bucket = if n <= 32 { v } else { v * 32 / n };
                counts[bucket as usize] += 1;
            }
            let buckets = counts.len() as f64;
            let mean = draws as f64 / buckets;
            let sigma = (mean * (1.0 - 1.0 / buckets)).sqrt();
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 - mean).abs() < 5.0 * sigma,
                    "n={n} bucket {i}: count {c}, mean {mean:.1}, sigma {sigma:.1}"
                );
            }
        }
    }

    #[test]
    fn below_covers_full_range_inclusive_of_extremes() {
        let mut r = KeyedRng::new(11, 0);
        let n = 5u64;
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(n) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never drawn: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        KeyedRng::new(0, 0).below(0);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = KeyedRng::new(42, 0);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut r = KeyedRng::seed_from_u64(1);
        let dyn_r: &mut dyn Rng = &mut r;
        let x = dyn_r.range_u64(10, 20);
        assert!((10..20).contains(&x));
    }
}
