//! Architectural models of Tilera TILE-Gx and TILE*Pro* many-core processors.
//!
//! This crate is the single source of truth for every architectural
//! parameter used by the rest of the workspace: chip grids, cache
//! geometries, clock rates, mesh characteristics, and the device timing
//! constants published in the TSHMEM paper (Lam, George, Lam — IPDPS
//! Workshops 2013, Table II and Section III).
//!
//! Both the functional (native-thread) engine and the timed
//! (discrete-event) engine route over the same [`Mesh`] with the same
//! dimension-order algorithm, so hop counts — and therefore every latency
//! that depends on them — are identical between the two.
//!
//! # Example
//!
//! ```
//! use tile_arch::{Device, TileCoord};
//!
//! let gx = Device::tile_gx8036();
//! assert_eq!(gx.grid.tiles(), 36);
//! // Corner-to-corner on the 6x6 mesh is 10 hops under XY routing.
//! let hops = gx.grid.hops(TileCoord::new(0, 0), TileCoord::new(5, 5));
//! assert_eq!(hops, 10);
//! ```

pub mod area;
pub mod clock;
pub mod device;
pub mod mesh;
pub mod route;

pub use area::TestArea;
pub use clock::Clock;
pub use device::{Device, DeviceFamily, DeviceTimings, MemTimings, UdnTimings};
pub use mesh::{Direction, Mesh, TileCoord, TileId};
pub use route::{route_xy, RouteIter};
