//! 2D mesh geometry: tile coordinates, linear tile ids, and hop distances.
//!
//! Tilera chips arrange tiles in a rectangular grid addressed row-major
//! from the top-left corner, which matches the "virtual CPU numbers" used
//! in the paper's Table III (e.g. on a 6-column area, tile 14 sits at
//! row 2, column 2, and its "up" neighbor is tile 8).

use std::fmt;

/// Linear tile identifier (row-major within a [`Mesh`]).
pub type TileId = usize;

/// Position of a tile in the 2D grid: `x` is the column, `y` the row.
///
/// Row 0 is the top of the chip; moving "up" decreases `y`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    pub x: u16,
    pub y: u16,
}

impl TileCoord {
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other` — the hop count of any minimal
    /// dimension-order route.
    pub fn manhattan(self, other: TileCoord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Debug for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Cardinal direction of a single mesh hop.
///
/// `Up` is toward row 0 (smaller `y`), matching the paper's orientation
/// where tile 14's "up" neighbor on a 6-wide area is tile 8.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    Left,
    Right,
    Up,
    Down,
}

impl Direction {
    /// All four directions, in the order the paper's Table III lists them.
    pub const ALL: [Direction; 4] = [
        Direction::Left,
        Direction::Right,
        Direction::Up,
        Direction::Down,
    ];

    /// Human-readable lowercase name, as printed in Table III.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Left => "left",
            Direction::Right => "right",
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }

    pub fn opposite(self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// A rectangular grid of tiles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh {
    pub cols: u16,
    pub rows: u16,
}

impl Mesh {
    pub const fn new(cols: u16, rows: u16) -> Self {
        Self { cols, rows }
    }

    /// Total number of tiles in the grid.
    pub const fn tiles(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Whether `c` lies within the grid.
    pub fn contains(&self, c: TileCoord) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// Row-major linear id of `c`.
    ///
    /// # Panics
    /// Panics if `c` is outside the grid.
    pub fn id_of(&self, c: TileCoord) -> TileId {
        assert!(self.contains(c), "tile {c:?} outside {self:?}");
        c.y as usize * self.cols as usize + c.x as usize
    }

    /// Coordinate of linear id `id`.
    ///
    /// # Panics
    /// Panics if `id >= self.tiles()`.
    pub fn coord_of(&self, id: TileId) -> TileCoord {
        assert!(id < self.tiles(), "tile id {id} outside {self:?}");
        TileCoord::new((id % self.cols as usize) as u16, (id / self.cols as usize) as u16)
    }

    /// Hop count of the minimal XY route between two tiles.
    pub fn hops(&self, a: TileCoord, b: TileCoord) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        a.manhattan(b)
    }

    /// Hop count between two linear ids.
    pub fn hops_id(&self, a: TileId, b: TileId) -> u32 {
        self.hops(self.coord_of(a), self.coord_of(b))
    }

    /// Neighbor of `c` in direction `d`, if it exists on the grid.
    pub fn neighbor(&self, c: TileCoord, d: Direction) -> Option<TileCoord> {
        let (x, y) = (c.x as i32, c.y as i32);
        let (nx, ny) = match d {
            Direction::Left => (x - 1, y),
            Direction::Right => (x + 1, y),
            Direction::Up => (x, y - 1),
            Direction::Down => (x, y + 1),
        };
        if nx < 0 || ny < 0 {
            return None;
        }
        let n = TileCoord::new(nx as u16, ny as u16);
        self.contains(n).then_some(n)
    }

    /// Iterator over all tile coordinates, row-major.
    pub fn iter(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |y| (0..cols).map(move |x| TileCoord::new(x, y)))
    }

    /// The maximum hop count on this grid (corner to corner).
    pub fn diameter(&self) -> u32 {
        (self.cols as u32 - 1) + (self.rows as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_ids_match_paper_table3() {
        // Table III uses a 6x6 area: tile 14 is at row 2, col 2; its
        // neighbors are 13 (left), 15 (right), 8 (up), 20 (down).
        let m = Mesh::new(6, 6);
        let c = m.coord_of(14);
        assert_eq!(c, TileCoord::new(2, 2));
        assert_eq!(m.id_of(m.neighbor(c, Direction::Left).unwrap()), 13);
        assert_eq!(m.id_of(m.neighbor(c, Direction::Right).unwrap()), 15);
        assert_eq!(m.id_of(m.neighbor(c, Direction::Up).unwrap()), 8);
        assert_eq!(m.id_of(m.neighbor(c, Direction::Down).unwrap()), 20);
    }

    #[test]
    fn paper_hop_counts() {
        // Section III-C: 1, 5, and 10 hops for neighbor, side-to-side,
        // and corner-to-corner on the 6x6 area.
        let m = Mesh::new(6, 6);
        assert_eq!(m.hops_id(14, 13), 1);
        assert_eq!(m.hops_id(6, 11), 5); // side-to-side right
        assert_eq!(m.hops_id(1, 31), 5); // side-to-side down
        assert_eq!(m.hops_id(0, 35), 10); // corners
        assert_eq!(m.diameter(), 10);
    }

    #[test]
    fn id_coord_roundtrip() {
        let m = Mesh::new(8, 8);
        for id in 0..m.tiles() {
            assert_eq!(m.id_of(m.coord_of(id)), id);
        }
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh::new(6, 6);
        assert_eq!(m.neighbor(TileCoord::new(0, 0), Direction::Left), None);
        assert_eq!(m.neighbor(TileCoord::new(0, 0), Direction::Up), None);
        assert_eq!(m.neighbor(TileCoord::new(5, 5), Direction::Right), None);
        assert_eq!(m.neighbor(TileCoord::new(5, 5), Direction::Down), None);
        assert_eq!(
            m.neighbor(TileCoord::new(0, 0), Direction::Right),
            Some(TileCoord::new(1, 0))
        );
    }

    #[test]
    fn iter_covers_grid_row_major() {
        let m = Mesh::new(3, 2);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], TileCoord::new(0, 0));
        assert_eq!(v[2], TileCoord::new(2, 0));
        assert_eq!(v[3], TileCoord::new(0, 1));
        for (id, c) in v.iter().enumerate() {
            assert_eq!(m.id_of(*c), id);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn id_of_out_of_bounds_panics() {
        Mesh::new(2, 2).id_of(TileCoord::new(2, 0));
    }

    #[test]
    fn direction_names_and_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Direction::Up.name(), "up");
    }

    #[test]
    fn manhattan_symmetry() {
        let a = TileCoord::new(1, 4);
        let b = TileCoord::new(5, 0);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 8);
        assert_eq!(a.manhattan(a), 0);
    }
}
