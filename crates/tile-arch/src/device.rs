//! Device descriptors for Tilera many-core processors.
//!
//! Two kinds of parameter live here:
//!
//! * **Published architecture** (grid, word width, clock, cache sizes,
//!   controllers) — straight from the paper's Table II and the Tilera
//!   product briefs it cites.
//! * **Calibrated timings** ([`DeviceTimings`]) — per-level copy
//!   throughputs, UDN setup/per-hop costs, and TMC barrier coefficients.
//!   Each constant is derived from a measurement the paper reports in
//!   Section III (the derivations are spelled out field by field below and
//!   in `EXPERIMENTS.md`). The simulator produces the paper's *shapes*
//!   (cache-size transitions, crossovers, who-wins) structurally; these
//!   constants only pin the plateau heights to the published values.

use crate::clock::Clock;
use crate::mesh::{Direction, Mesh};

/// Processor generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceFamily {
    /// 64-bit TILE-Gx family (Gx16, Gx36).
    Gx,
    /// 32-bit TILEPro family (Pro36, Pro64).
    Pro,
}

/// UDN (User Dynamic Network) timing model.
///
/// Section III-C decomposes a one-way transfer into *setup-and-teardown*
/// plus *network traversal* at one word per hop per cycle. Fitting the
/// paper's Table III (1/5/10-hop latencies) gives the slope and intercept
/// used here; the per-direction deltas reproduce the ±1 ns directional
/// spread the paper observed.
#[derive(Clone, Copy, Debug)]
pub struct UdnTimings {
    /// Software + hardware setup-and-teardown, in picoseconds.
    pub setup_ps: u64,
    /// Effective cost per hop (switch cycle plus router overhead), ps.
    pub per_hop_ps: u64,
    /// Extra cost per additional payload word (pipelined wormhole), ps.
    pub per_word_ps: u64,
    /// Deterministic per-direction delta (left, right, up, down), ps.
    /// Signed; reproduces Table III's directional spread.
    pub dir_delta_ps: [i64; 4],
    /// Additional software overhead per two-sided TMC helper send/recv
    /// pair, in cycles — charged by TSHMEM protocol code on top of wire
    /// latency (derived from the gap between Fig 4 and Fig 8).
    pub sw_overhead_cycles: u64,
    /// Demultiplexing queues per tile.
    pub demux_queues: usize,
    /// Maximum payload per packet, in words.
    pub max_payload_words: usize,
}

impl UdnTimings {
    /// Delta for a dominant direction, ps (0 for self-sends).
    pub fn dir_delta(&self, d: Direction) -> i64 {
        match d {
            Direction::Left => self.dir_delta_ps[0],
            Direction::Right => self.dir_delta_ps[1],
            Direction::Up => self.dir_delta_ps[2],
            Direction::Down => self.dir_delta_ps[3],
        }
    }

    /// One-way latency for `payload_words` over `hops` hops, ps.
    pub fn one_way_ps(&self, hops: u32, payload_words: usize) -> u64 {
        let words_extra = payload_words.saturating_sub(1) as u64;
        self.setup_ps + self.per_hop_ps * hops as u64 + self.per_word_ps * words_extra
    }
}

/// Memory-system timing model: per-level effective copy throughput in
/// bytes per cycle, plus per-level access latencies for the line-grain
/// cache simulator.
///
/// Throughputs are calibrated to the Figure 3 plateaus: on TILE-Gx36 the
/// L1d plateau tops out near 3100 MB/s at 1 GHz (3.1 B/cycle), L2 between
/// 1900 and 2700 MB/s, the L3 DDC near 1000 MB/s, and memory-to-memory
/// converges at 320 MB/s; TILEPro64 sits near 500 MB/s through L1/L2 and
/// 370 MB/s to memory at 700 MHz.
#[derive(Clone, Copy, Debug)]
pub struct MemTimings {
    /// Copy throughput when the working set fits in L1d, bytes/cycle.
    pub l1d_bytes_per_cycle: f64,
    /// Copy throughput out of the local L2, bytes/cycle.
    pub l2_bytes_per_cycle: f64,
    /// Copy throughput served from remote L2s via the DDC, bytes/cycle.
    pub ddc_bytes_per_cycle: f64,
    /// Memory-to-memory copy throughput, bytes/cycle.
    pub dram_bytes_per_cycle: f64,
    /// Effective DDC capacity visible to one streaming tile, bytes —
    /// the paper attributes the third Fig 3 transition to transfers
    /// "exceeding the L2 caches of nearby tiles" starting near 1 MB of
    /// buffer (2 MB of copy working set) on the Gx36.
    pub ddc_effective_bytes: usize,
    /// L1d hit latency, cycles.
    pub l1d_hit_cycles: u64,
    /// Local L2 hit latency, cycles.
    pub l2_hit_cycles: u64,
    /// Remote-L2 (DDC) base hit latency, cycles (plus per-hop cost).
    pub ddc_hit_cycles: u64,
    /// DRAM access latency, cycles.
    pub dram_cycles: u64,
}

/// TMC barrier latency coefficients (Figure 5).
///
/// The spin barrier is a shared-counter barrier whose arrival cost is one
/// coherence miss per participant (linear in tiles); the sync barrier adds
/// a scheduler wake per participant. Coefficients are fitted to the
/// 36-tile values the paper quotes: spin 1.5 µs (Gx36) / 47.2 µs (Pro64),
/// sync 321 µs / 786 µs.
#[derive(Clone, Copy, Debug)]
pub struct BarrierTimings {
    pub spin_base_ps: u64,
    pub spin_per_tile_ps: u64,
    pub sync_base_ps: u64,
    pub sync_per_tile_ps: u64,
}

impl BarrierTimings {
    /// Modeled TMC spin-barrier latency at `tiles` participants, ps.
    pub fn spin_ps(&self, tiles: usize) -> u64 {
        self.spin_base_ps + self.spin_per_tile_ps * tiles.saturating_sub(1) as u64
    }

    /// Modeled TMC sync-barrier latency at `tiles` participants, ps.
    pub fn sync_ps(&self, tiles: usize) -> u64 {
        self.sync_base_ps + self.sync_per_tile_ps * tiles.saturating_sub(1) as u64
    }
}

/// Compute-throughput model for the application case studies
/// (Figures 13–14): cycles per single-precision floating-point operation
/// and per integer operation. TILEPro lacks hardware floating point, which
/// is why the paper sees roughly an order of magnitude between the devices
/// on the 2D-FFT but near parity on integer-dominated CBIR.
#[derive(Clone, Copy, Debug)]
pub struct ComputeTimings {
    pub cycles_per_flop: f64,
    pub cycles_per_intop: f64,
}

/// Aggregated calibrated timings for one device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceTimings {
    pub udn: UdnTimings,
    pub mem: MemTimings,
    pub barrier: BarrierTimings,
    pub compute: ComputeTimings,
}

/// A Tilera many-core device: published architecture plus calibrated
/// timing model.
#[derive(Clone, Copy, Debug)]
pub struct Device {
    pub name: &'static str,
    pub family: DeviceFamily,
    /// Tile grid (full chip).
    pub grid: Mesh,
    /// Word width of the switching fabric, bytes (8 on Gx, 4 on Pro).
    pub word_bytes: usize,
    pub clock: Clock,
    pub l1i_bytes: usize,
    pub l1d_bytes: usize,
    pub l2_bytes: usize,
    pub cache_line_bytes: usize,
    pub ddr_controllers: usize,
    /// Number of dynamic networks in the iMesh.
    pub dynamic_networks: usize,
    /// Peak on-chip mesh bisection figure from Table II, Tbps.
    pub mesh_tbps: f64,
    pub timings: DeviceTimings,
}

impl Device {
    /// TILE-Gx8036 ("TILE-Gx36"): 36 tiles of 64-bit VLIW cores at 1 GHz.
    pub const fn tile_gx8036() -> Device {
        Device {
            name: "TILE-Gx8036",
            family: DeviceFamily::Gx,
            grid: Mesh::new(6, 6),
            word_bytes: 8,
            clock: Clock::from_hz(1_000_000_000),
            l1i_bytes: 32 * 1024,
            l1d_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            cache_line_bytes: 64,
            ddr_controllers: 2,
            dynamic_networks: 5,
            mesh_tbps: 60.0,
            timings: DeviceTimings {
                udn: UdnTimings {
                    // Fit of Table III Gx column: 21.5 ns at 1 hop,
                    // 26 ns at 5 hops, 31.5 ns at 10 hops.
                    setup_ps: 20_400,
                    per_hop_ps: 1_111,
                    per_word_ps: 1_000, // 1 word/cycle at 1 GHz
                    dir_delta_ps: [-500, 300, 300, 300],
                    sw_overhead_cycles: 25,
                    demux_queues: 4,
                    max_payload_words: 127,
                },
                mem: MemTimings {
                    l1d_bytes_per_cycle: 3.1,
                    l2_bytes_per_cycle: 2.3,
                    ddc_bytes_per_cycle: 1.0,
                    dram_bytes_per_cycle: 0.32,
                    ddc_effective_bytes: 2 * 1024 * 1024,
                    l1d_hit_cycles: 2,
                    l2_hit_cycles: 11,
                    ddc_hit_cycles: 41,
                    dram_cycles: 85,
                },
                barrier: BarrierTimings {
                    // 1.5 us at 36 tiles.
                    spin_base_ps: 80_000,
                    spin_per_tile_ps: 40_500,
                    // 321 us at 36 tiles.
                    sync_base_ps: 12_000_000,
                    sync_per_tile_ps: 8_830_000,
                },
                compute: ComputeTimings {
                    cycles_per_flop: 2.0,
                    cycles_per_intop: 1.1,
                },
            },
        }
    }

    /// TILEPro64: 64 tiles of 32-bit VLIW cores at 700 MHz.
    pub const fn tilepro64() -> Device {
        Device {
            name: "TILEPro64",
            family: DeviceFamily::Pro,
            grid: Mesh::new(8, 8),
            word_bytes: 4,
            clock: Clock::from_hz(700_000_000),
            l1i_bytes: 16 * 1024,
            l1d_bytes: 8 * 1024,
            l2_bytes: 64 * 1024,
            cache_line_bytes: 64,
            ddr_controllers: 4,
            dynamic_networks: 5, // four dynamic + one static
            mesh_tbps: 37.0,
            timings: DeviceTimings {
                udn: UdnTimings {
                    // Fit of Table III Pro column: 18.5 ns at 1 hop,
                    // 25 ns at 5 hops, 33 ns at 10 hops.
                    setup_ps: 16_900,
                    per_hop_ps: 1_611,
                    per_word_ps: 1_429, // 1 word/cycle at 700 MHz
                    dir_delta_ps: [400, 400, -400, -400],
                    sw_overhead_cycles: 25,
                    demux_queues: 4,
                    max_payload_words: 127,
                },
                mem: MemTimings {
                    l1d_bytes_per_cycle: 0.714,
                    l2_bytes_per_cycle: 0.714,
                    ddc_bytes_per_cycle: 0.64,
                    dram_bytes_per_cycle: 0.529,
                    ddc_effective_bytes: 512 * 1024,
                    l1d_hit_cycles: 2,
                    l2_hit_cycles: 8,
                    ddc_hit_cycles: 35,
                    dram_cycles: 70,
                },
                barrier: BarrierTimings {
                    // 47.2 us at 36 tiles.
                    spin_base_ps: 200_000,
                    spin_per_tile_ps: 1_342_000,
                    // 786 us at 36 tiles.
                    sync_base_ps: 30_000_000,
                    sync_per_tile_ps: 21_600_000,
                },
                compute: ComputeTimings {
                    // Software floating point: roughly an order of
                    // magnitude behind Gx per Figure 13's discussion.
                    cycles_per_flop: 14.0,
                    cycles_per_intop: 1.0,
                },
            },
        }
    }

    /// TILE-Gx8016: 16-tile sibling of the Gx36 (same tile architecture).
    pub const fn tile_gx8016() -> Device {
        let mut d = Device::tile_gx8036();
        d.name = "TILE-Gx8016";
        d.grid = Mesh::new(4, 4);
        d
    }

    /// TILEPro36: 36-tile sibling of the Pro64.
    pub const fn tilepro36() -> Device {
        let mut d = Device::tilepro64();
        d.name = "TILEPro36";
        d.grid = Mesh::new(6, 6);
        d
    }

    /// A hypothetical 1024-tile scale-out of the Gx tile architecture
    /// (32x32 mesh). Not real hardware — the scaling-study device for
    /// the cooperative M:N engine, sized after the 1024-core RISC-V
    /// cluster of Bertuletti et al. Excluded from [`Device::all`]: the
    /// calibrated timing tables are only validated against the four
    /// shipped Tilera parts.
    pub const fn tile_gx_scaled() -> Device {
        let mut d = Device::tile_gx8036();
        d.name = "TILE-Gx-scaled";
        d.grid = Mesh::new(32, 32);
        d
    }

    /// All devices modeled by this workspace.
    pub fn all() -> [Device; 4] {
        [
            Device::tile_gx8036(),
            Device::tilepro64(),
            Device::tile_gx8016(),
            Device::tilepro36(),
        ]
    }

    /// Word width of the switching fabric, in bits.
    pub const fn word_bits(&self) -> usize {
        self.word_bytes * 8
    }

    /// UDN one-way latency between two tiles of this device's grid, ps,
    /// including the deterministic directional delta.
    pub fn udn_one_way_ps(
        &self,
        from: crate::mesh::TileCoord,
        to: crate::mesh::TileCoord,
        payload_words: usize,
    ) -> u64 {
        let hops = self.grid.hops(from, to);
        let base = self.timings.udn.one_way_ps(hops, payload_words);
        let label_dir = dominant_direction(from, to);
        match label_dir {
            Some(d) => {
                let delta = self.timings.udn.dir_delta(d);
                (base as i64 + delta).max(0) as u64
            }
            None => base,
        }
    }
}

/// The first direction of the XY route (the paper labels each transfer by
/// its dominant direction); `None` for a self-send.
pub fn dominant_direction(
    from: crate::mesh::TileCoord,
    to: crate::mesh::TileCoord,
) -> Option<Direction> {
    if to.x < from.x {
        Some(Direction::Left)
    } else if to.x > from.x {
        Some(Direction::Right)
    } else if to.y < from.y {
        Some(Direction::Up)
    } else if to.y > from.y {
        Some(Direction::Down)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::TileCoord;

    #[test]
    fn table2_architecture_constants() {
        let gx = Device::tile_gx8036();
        let pro = Device::tilepro64();
        assert_eq!(gx.grid.tiles(), 36);
        assert_eq!(pro.grid.tiles(), 64);
        assert_eq!(gx.word_bits(), 64);
        assert_eq!(pro.word_bits(), 32);
        assert_eq!(gx.l1d_bytes, 32 * 1024);
        assert_eq!(gx.l2_bytes, 256 * 1024);
        assert_eq!(pro.l1d_bytes, 8 * 1024);
        assert_eq!(pro.l2_bytes, 64 * 1024);
        assert_eq!(gx.ddr_controllers, 2);
        assert_eq!(pro.ddr_controllers, 4);
        assert_eq!(gx.clock.hz(), 1_000_000_000);
        assert_eq!(pro.clock.hz(), 700_000_000);
    }

    #[test]
    fn udn_neighbor_latency_matches_table3() {
        // Gx: ~21-22 ns for neighbors; Pro: ~18-19 ns.
        let gx = Device::tile_gx8036();
        let pro = Device::tilepro64();
        let c = TileCoord::new(2, 2);
        let left = TileCoord::new(1, 2);
        let gx_ns = gx.udn_one_way_ps(c, left, 1) as f64 / 1000.0;
        assert!((20.5..=21.5).contains(&gx_ns), "gx neighbor {gx_ns}");
        let pro_ns = pro.udn_one_way_ps(c, left, 1) as f64 / 1000.0;
        assert!((18.0..=19.5).contains(&pro_ns), "pro neighbor {pro_ns}");
    }

    #[test]
    fn udn_corner_latency_matches_table3() {
        // 10 hops: Gx ~31-32 ns, Pro ~33 ns — Pro is *slower* at corners
        // despite faster setup, because its per-hop time is 1.43 ns.
        let gx = Device::tile_gx8036();
        let pro = Device::tilepro64();
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(5, 5);
        let gx_ns = gx.udn_one_way_ps(a, b, 1) as f64 / 1000.0;
        let pro_ns = pro.udn_one_way_ps(a, b, 1) as f64 / 1000.0;
        assert!((31.0..=32.5).contains(&gx_ns), "gx corner {gx_ns}");
        assert!((32.0..=34.0).contains(&pro_ns), "pro corner {pro_ns}");
        assert!(pro_ns > gx_ns, "crossover: Pro slower at long distances");
    }

    #[test]
    fn udn_crossover_neighbors_favor_pro() {
        // At 1 hop the Pro's shorter setup wins (paper Fig 4).
        let gx = Device::tile_gx8036();
        let pro = Device::tilepro64();
        let c = TileCoord::new(2, 2);
        let r = TileCoord::new(3, 2);
        assert!(pro.udn_one_way_ps(c, r, 1) < gx.udn_one_way_ps(c, r, 1));
    }

    #[test]
    fn spin_barrier_calibration() {
        let gx = Device::tile_gx8036().timings.barrier;
        let pro = Device::tilepro64().timings.barrier;
        let gx_us = gx.spin_ps(36) as f64 / 1e6;
        let pro_us = pro.spin_ps(36) as f64 / 1e6;
        assert!((1.3..=1.7).contains(&gx_us), "gx spin {gx_us}");
        assert!((45.0..=50.0).contains(&pro_us), "pro spin {pro_us}");
        let gx_sync_us = gx.sync_ps(36) as f64 / 1e6;
        let pro_sync_us = pro.sync_ps(36) as f64 / 1e6;
        assert!((300.0..=340.0).contains(&gx_sync_us), "gx sync {gx_sync_us}");
        assert!((750.0..=820.0).contains(&pro_sync_us), "pro sync {pro_sync_us}");
    }

    #[test]
    fn mem_plateaus_match_fig3() {
        let gx = Device::tile_gx8036();
        let mbps = |bpc: f64, d: &Device| bpc * d.clock.hz() as f64 / 1e6;
        assert!((mbps(gx.timings.mem.l1d_bytes_per_cycle, &gx) - 3100.0).abs() < 50.0);
        assert!((mbps(gx.timings.mem.dram_bytes_per_cycle, &gx) - 320.0).abs() < 10.0);
        let pro = Device::tilepro64();
        assert!((mbps(pro.timings.mem.l1d_bytes_per_cycle, &pro) - 500.0).abs() < 10.0);
        assert!((mbps(pro.timings.mem.dram_bytes_per_cycle, &pro) - 370.0).abs() < 10.0);
        // Memory-to-memory on Pro is *faster* than Gx (paper Section III-B).
        assert!(
            mbps(pro.timings.mem.dram_bytes_per_cycle, &pro)
                > mbps(gx.timings.mem.dram_bytes_per_cycle, &gx)
        );
    }

    #[test]
    fn payload_words_pipeline() {
        let udn = Device::tile_gx8036().timings.udn;
        let one = udn.one_way_ps(5, 1);
        let many = udn.one_way_ps(5, 127);
        // Wormhole pipelining: +1 cycle per extra word, not per word per hop.
        assert_eq!(many - one, 126 * udn.per_word_ps);
    }

    #[test]
    fn derived_devices() {
        assert_eq!(Device::tile_gx8016().grid.tiles(), 16);
        assert_eq!(Device::tilepro36().grid.tiles(), 36);
        assert_eq!(Device::all().len(), 4);
    }

    #[test]
    fn scaled_device_is_1024_tiles_and_not_shipped() {
        let d = Device::tile_gx_scaled();
        assert_eq!(d.grid.tiles(), 1024);
        assert_eq!(d.word_bits(), 64);
        // Scaling-study device only: never part of the calibrated set.
        assert!(Device::all().iter().all(|s| s.name != d.name));
    }

    #[test]
    fn dominant_direction_cases() {
        let a = TileCoord::new(2, 2);
        assert_eq!(dominant_direction(a, TileCoord::new(0, 4)), Some(Direction::Left));
        assert_eq!(dominant_direction(a, TileCoord::new(2, 0)), Some(Direction::Up));
        assert_eq!(dominant_direction(a, a), None);
    }
}
