//! Clock-rate conversions between cycles and simulated time.
//!
//! All simulated time in the workspace is kept in integer **picoseconds**
//! so that both modeled devices (1 GHz and 700 MHz — a 10/7 ratio) convert
//! exactly and deterministically.

/// A fixed clock rate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Clock {
    hz: u64,
}

impl Clock {
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0);
        Self { hz }
    }

    pub const fn hz(&self) -> u64 {
        self.hz
    }

    /// Duration of one cycle in picoseconds, rounded to nearest.
    pub const fn cycle_ps(&self) -> u64 {
        (1_000_000_000_000 + self.hz / 2) / self.hz
    }

    /// Convert a cycle count to picoseconds (rounded to nearest).
    pub fn cycles_to_ps(&self, cycles: u64) -> u64 {
        // Split to avoid overflow for large cycle counts.
        let whole_seconds = cycles / self.hz;
        let rem = cycles % self.hz;
        whole_seconds * 1_000_000_000_000 + (rem * 1_000_000 + self.hz / 2_000_000) / (self.hz / 1_000_000)
    }

    /// Convert fractional cycles to picoseconds.
    pub fn cycles_f64_to_ps(&self, cycles: f64) -> u64 {
        (cycles * 1e12 / self.hz as f64).round().max(0.0) as u64
    }

    /// Convert picoseconds to (fractional) cycles.
    pub fn ps_to_cycles_f64(&self, ps: u64) -> f64 {
        ps as f64 * self.hz as f64 / 1e12
    }

    /// Nanoseconds for a cycle count, as a float (for reporting).
    pub fn cycles_to_ns_f64(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e9 / self.hz as f64
    }
}

/// Convert picoseconds to nanoseconds for reporting.
pub fn ps_to_ns(ps: u64) -> f64 {
    ps as f64 / 1e3
}

/// Convert picoseconds to microseconds for reporting.
pub fn ps_to_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Convert picoseconds to seconds for reporting.
pub fn ps_to_s(ps: u64) -> f64 {
    ps as f64 / 1e12
}

/// Effective bandwidth in MB/s given bytes moved over a ps interval.
pub fn bandwidth_mbps(bytes: u64, ps: u64) -> f64 {
    if ps == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / (ps as f64 / 1e12) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_ps_exact_for_modeled_devices() {
        assert_eq!(Clock::from_hz(1_000_000_000).cycle_ps(), 1000);
        assert_eq!(Clock::from_hz(700_000_000).cycle_ps(), 1429);
    }

    #[test]
    fn cycles_to_ps_roundtrip() {
        let c = Clock::from_hz(1_000_000_000);
        assert_eq!(c.cycles_to_ps(5), 5_000);
        assert_eq!(c.cycles_to_ps(1_000_000_000), 1_000_000_000_000);
        let p = Clock::from_hz(700_000_000);
        // 700 cycles at 700 MHz is exactly 1 us.
        assert_eq!(p.cycles_to_ps(700), 1_000_000);
    }

    #[test]
    fn large_cycle_counts_do_not_overflow() {
        let c = Clock::from_hz(1_000_000_000);
        // 10^13 cycles = 10^4 seconds.
        let ps = c.cycles_to_ps(10_000_000_000_000);
        assert_eq!(ps, 10_000 * 1_000_000_000_000);
    }

    #[test]
    fn fractional_conversions() {
        let c = Clock::from_hz(1_000_000_000);
        assert_eq!(c.cycles_f64_to_ps(2.5), 2500);
        assert!((c.ps_to_cycles_f64(2500) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_helper() {
        // 1 MB in 1 ms = 1000 MB/s.
        let mbps = bandwidth_mbps(1_000_000, 1_000_000_000);
        assert!((mbps - 1000.0).abs() < 1e-6);
        assert!(bandwidth_mbps(1, 0).is_infinite());
    }

    #[test]
    fn reporting_units() {
        assert_eq!(ps_to_ns(1500), 1.5);
        assert_eq!(ps_to_us(2_500_000), 2.5);
        assert_eq!(ps_to_s(3_000_000_000_000), 3.0);
    }
}
