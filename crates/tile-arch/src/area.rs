//! Rectangular test areas with virtual CPU numbering.
//!
//! The paper's microbenchmarks run on a 6×6 *test area*: the whole chip
//! on TILE-Gx36, but only a corner of the 8×8 TILEPro64. Tiles inside the
//! area are addressed with **virtual CPU numbers** (row-major within the
//! area), which map to physical tile ids on the full chip. On the Pro64,
//! "virtual tile 6 is physical tile 8" — exactly what [`TestArea::physical`]
//! computes.

use crate::device::Device;
use crate::mesh::{Mesh, TileCoord, TileId};

/// A rectangular region of a device's grid with its own row-major
/// (virtual) tile numbering.
#[derive(Clone, Copy, Debug)]
pub struct TestArea {
    pub device: Device,
    /// Top-left corner of the area on the physical grid.
    pub origin: TileCoord,
    /// Area dimensions.
    pub area: Mesh,
}

impl TestArea {
    /// An area anchored at the chip's top-left corner.
    ///
    /// # Panics
    /// Panics if the area does not fit on the device grid.
    pub fn new(device: Device, cols: u16, rows: u16) -> Self {
        Self::at(device, TileCoord::new(0, 0), cols, rows)
    }

    /// An area anchored at `origin`.
    ///
    /// # Panics
    /// Panics if the area does not fit on the device grid.
    pub fn at(device: Device, origin: TileCoord, cols: u16, rows: u16) -> Self {
        assert!(
            origin.x + cols <= device.grid.cols && origin.y + rows <= device.grid.rows,
            "{cols}x{rows} area at {origin:?} does not fit on {}",
            device.name
        );
        Self {
            device,
            origin,
            area: Mesh::new(cols, rows),
        }
    }

    /// The paper's 6×6 effective test area for a device (full coverage of
    /// the TILE-Gx36, a subset of the TILEPro64).
    pub fn paper_6x6(device: Device) -> Self {
        Self::new(device, 6, 6)
    }

    /// Number of tiles in the area.
    pub fn tiles(&self) -> usize {
        self.area.tiles()
    }

    /// Physical coordinate of a virtual CPU number.
    ///
    /// # Panics
    /// Panics if `virt` is outside the area.
    pub fn coord(&self, virt: TileId) -> TileCoord {
        let c = self.area.coord_of(virt);
        TileCoord::new(self.origin.x + c.x, self.origin.y + c.y)
    }

    /// Physical tile id (on the full device grid) of a virtual CPU number.
    pub fn physical(&self, virt: TileId) -> TileId {
        self.device.grid.id_of(self.coord(virt))
    }

    /// Virtual CPU number of a physical tile id, if inside the area.
    pub fn virtual_of(&self, phys: TileId) -> Option<TileId> {
        let c = self.device.grid.coord_of(phys);
        if c.x < self.origin.x || c.y < self.origin.y {
            return None;
        }
        let local = TileCoord::new(c.x - self.origin.x, c.y - self.origin.y);
        self.area.contains(local).then(|| self.area.id_of(local))
    }

    /// Hop count between two virtual CPU numbers.
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        self.device.grid.hops(self.coord(a), self.coord(b))
    }

    /// UDN one-way latency between two virtual CPU numbers, ps.
    pub fn udn_one_way_ps(&self, a: TileId, b: TileId, payload_words: usize) -> u64 {
        self.device.udn_one_way_ps(self.coord(a), self.coord(b), payload_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gx36_virtual_equals_physical() {
        // Chip dimensions equal the test area on the Gx36, so virtual and
        // physical CPU numbers coincide (paper Section III-C).
        let a = TestArea::paper_6x6(Device::tile_gx8036());
        for v in 0..a.tiles() {
            assert_eq!(a.physical(v), v);
            assert_eq!(a.virtual_of(v), Some(v));
        }
    }

    #[test]
    fn pro64_virtual_mapping_matches_paper() {
        // "virtual tile 6 is physical tile 8" on the 8x8 TILEPro64.
        let a = TestArea::paper_6x6(Device::tilepro64());
        assert_eq!(a.physical(6), 8);
        assert_eq!(a.physical(0), 0);
        assert_eq!(a.physical(35), 5 * 8 + 5);
        assert_eq!(a.virtual_of(8), Some(6));
        // Physical tiles outside the 6x6 corner have no virtual number.
        assert_eq!(a.virtual_of(6), None); // row 0, col 6
        assert_eq!(a.virtual_of(63), None);
    }

    #[test]
    fn hops_within_area() {
        let a = TestArea::paper_6x6(Device::tilepro64());
        assert_eq!(a.hops(0, 35), 10);
        assert_eq!(a.hops(14, 13), 1);
        assert_eq!(a.hops(6, 11), 5);
    }

    #[test]
    fn offset_area() {
        let a = TestArea::at(Device::tilepro64(), TileCoord::new(2, 2), 4, 4);
        assert_eq!(a.physical(0), 2 * 8 + 2);
        assert_eq!(a.virtual_of(2 * 8 + 2), Some(0));
        assert_eq!(a.virtual_of(0), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_area_panics() {
        TestArea::new(Device::tile_gx8036(), 7, 6);
    }

    #[test]
    fn udn_latency_through_area() {
        let a = TestArea::paper_6x6(Device::tile_gx8036());
        // Neighbor latency ~21-22 ns.
        let ns = a.udn_one_way_ps(14, 15, 1) as f64 / 1e3;
        assert!((20.5..=22.5).contains(&ns));
    }
}
