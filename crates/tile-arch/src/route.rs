//! Dimension-order (XY) routing over the iMesh.
//!
//! Tilera's dynamic networks are dimension-order routed: a packet first
//! travels along the X dimension to the destination column, then along Y
//! to the destination row. The route is therefore deterministic, which
//! both engines rely on — the timed engine charges per-hop wormhole
//! cycles along exactly this path, and the functional engine uses the hop
//! count for its latency annotations.

use crate::mesh::{Direction, Mesh, TileCoord};

/// Iterator over the tiles visited by the XY route from `from` to `to`,
/// excluding `from` itself and including `to`.
#[derive(Clone, Debug)]
pub struct RouteIter {
    cur: TileCoord,
    dst: TileCoord,
}

impl Iterator for RouteIter {
    type Item = (Direction, TileCoord);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == self.dst {
            return None;
        }
        // X first, then Y.
        let dir = if self.cur.x < self.dst.x {
            Direction::Right
        } else if self.cur.x > self.dst.x {
            Direction::Left
        } else if self.cur.y < self.dst.y {
            Direction::Down
        } else {
            Direction::Up
        };
        self.cur = match dir {
            Direction::Left => TileCoord::new(self.cur.x - 1, self.cur.y),
            Direction::Right => TileCoord::new(self.cur.x + 1, self.cur.y),
            Direction::Up => TileCoord::new(self.cur.x, self.cur.y - 1),
            Direction::Down => TileCoord::new(self.cur.x, self.cur.y + 1),
        };
        Some((dir, self.cur))
    }
}

impl ExactSizeIterator for RouteIter {
    fn len(&self) -> usize {
        self.cur.manhattan(self.dst) as usize
    }
}

/// XY route from `from` to `to` on `mesh`.
///
/// # Panics
/// Panics (in debug builds) if either endpoint is outside the mesh.
pub fn route_xy(mesh: &Mesh, from: TileCoord, to: TileCoord) -> RouteIter {
    debug_assert!(mesh.contains(from) && mesh.contains(to));
    RouteIter { cur: from, dst: to }
}

/// The dominant direction of the route, as the paper's Table III labels
/// each transfer ("left", "down-right", ...). Pure X or Y routes return a
/// single direction name; diagonal routes return e.g. `"down-right"`.
pub fn route_label(from: TileCoord, to: TileCoord) -> String {
    let mut parts: Vec<&str> = Vec::with_capacity(2);
    if to.y < from.y {
        parts.push("up");
    } else if to.y > from.y {
        parts.push("down");
    }
    if to.x < from.x {
        parts.push("left");
    } else if to.x > from.x {
        parts.push("right");
    }
    if parts.is_empty() {
        "self".to_string()
    } else {
        parts.join("-")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_x_then_y() {
        let m = Mesh::new(6, 6);
        let hops: Vec<_> = route_xy(&m, TileCoord::new(0, 0), TileCoord::new(2, 2)).collect();
        assert_eq!(
            hops.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![
                Direction::Right,
                Direction::Right,
                Direction::Down,
                Direction::Down
            ]
        );
        assert_eq!(hops.last().unwrap().1, TileCoord::new(2, 2));
    }

    #[test]
    fn route_len_matches_manhattan() {
        let m = Mesh::new(8, 8);
        for a in m.iter() {
            for b in m.iter() {
                let r = route_xy(&m, a, b);
                assert_eq!(r.len(), a.manhattan(b) as usize);
                assert_eq!(r.count(), a.manhattan(b) as usize);
            }
        }
    }

    #[test]
    fn route_stays_on_mesh() {
        let m = Mesh::new(6, 6);
        for (_, c) in route_xy(&m, TileCoord::new(5, 5), TileCoord::new(0, 0)) {
            assert!(m.contains(c));
        }
    }

    #[test]
    fn empty_route_for_self() {
        let m = Mesh::new(6, 6);
        assert_eq!(route_xy(&m, TileCoord::new(3, 3), TileCoord::new(3, 3)).count(), 0);
    }

    #[test]
    fn labels_match_table3_style() {
        assert_eq!(route_label(TileCoord::new(2, 2), TileCoord::new(1, 2)), "left");
        assert_eq!(route_label(TileCoord::new(2, 2), TileCoord::new(2, 1)), "up");
        assert_eq!(
            route_label(TileCoord::new(0, 0), TileCoord::new(5, 5)),
            "down-right"
        );
        assert_eq!(
            route_label(TileCoord::new(5, 5), TileCoord::new(0, 0)),
            "up-left"
        );
        assert_eq!(route_label(TileCoord::new(1, 1), TileCoord::new(1, 1)), "self");
    }
}
